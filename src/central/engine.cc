#include "central/engine.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "rules/event.h"
#include "runtime/rulegen.h"
#include "runtime/wire.h"

namespace crew::central {

using runtime::StepRecord;
using runtime::StepRunState;
using runtime::WorkflowState;

WorkflowEngine::WorkflowEngine(NodeId id, sim::Context* context,
                               const runtime::ProgramRegistry* programs,
                               const model::Deployment* deployment,
                               const runtime::CoordinationSpec* coordination,
                               EngineOptions options)
    : id_(id),
      ctx_(context),
      programs_(programs),
      deployment_(deployment),
      coordination_(coordination),
      options_(std::move(options)),
      own_tracker_(coordination),
      wfdb_("wfdb-engine-" + std::to_string(id)) {
  ctx_->network().Register(id_, this);
  if (!options_.wfdb_dir.empty()) {
    Status status = wfdb_.Recover(options_.wfdb_dir);
    if (status.ok()) status = wfdb_.OpenDurable(options_.wfdb_dir);
    if (!status.ok()) {
      CREW_LOG(Error) << "WFDB durability disabled: " << status.ToString();
    }
    // Forward recovery: restore the instance summary from the WFDB.
    const storage::Table* summary = wfdb_.FindTable("instance_summary");
    if (summary != nullptr) {
      for (const auto& [key, row] : summary->rows()) {
        size_t hash = key.rfind('#');
        if (hash == std::string::npos) continue;
        InstanceId inst{key.substr(0, hash),
                        strtoll(key.c_str() + hash + 1, nullptr, 10)};
        std::optional<Value> status_value = row.Get("status");
        if (status_value.has_value() && status_value->is_string()) {
          summary_[inst] = runtime::ParseWorkflowState(
              status_value->AsString());
        }
      }
    }
  }
}

void WorkflowEngine::RegisterSchema(model::CompiledSchemaPtr schema) {
  schemas_[schema->schema().name()] = std::move(schema);
}

WorkflowEngine::Instance* WorkflowEngine::Find(const InstanceId& instance) {
  auto it = instances_.find(instance);
  return it == instances_.end() ? nullptr : it->second.get();
}

const WorkflowEngine::Instance* WorkflowEngine::Find(
    const InstanceId& instance) const {
  auto it = instances_.find(instance);
  return it == instances_.end() ? nullptr : it->second.get();
}

sim::MsgCategory WorkflowEngine::CategoryFor(Mode mode) const {
  switch (mode) {
    case Mode::kNormal: return sim::MsgCategory::kNormal;
    case Mode::kFailure: return sim::MsgCategory::kFailureHandling;
    case Mode::kInputChange: return sim::MsgCategory::kInputChange;
    case Mode::kAbort: return sim::MsgCategory::kAbort;
  }
  return sim::MsgCategory::kNormal;
}

sim::LoadCategory WorkflowEngine::LoadFor(Mode mode) const {
  switch (mode) {
    case Mode::kNormal: return sim::LoadCategory::kNavigation;
    case Mode::kFailure: return sim::LoadCategory::kFailureHandling;
    case Mode::kInputChange: return sim::LoadCategory::kInputChange;
    case Mode::kAbort: return sim::LoadCategory::kAbort;
  }
  return sim::LoadCategory::kNavigation;
}

void WorkflowEngine::PersistInstanceStatus(const Instance& inst) {
  storage::Row row;
  row.Set("status",
          Value(std::string(runtime::WorkflowStateName(inst.status))));
  wfdb_.table("instance_summary").Put(inst.state.id().ToString(), row);
}

Status WorkflowEngine::StartWorkflow(const std::string& workflow,
                                     int64_t number,
                                     std::map<std::string, Value> inputs) {
  auto schema_it = schemas_.find(workflow);
  if (schema_it == schemas_.end()) {
    return Status::NotFound("no schema registered as " + workflow);
  }
  InstanceId id{workflow, number};
  if (instances_.count(id) || summary_.count(id)) {
    return Status::AlreadyExists("instance " + id.ToString() +
                                 " already exists");
  }

  auto inst = std::make_unique<Instance>();
  inst->schema = schema_it->second;
  inst->state = runtime::InstanceState(id, inst->schema);
  for (auto& [name, value] : inputs) {
    inst->state.SetData(name, std::move(value));
  }
  for (rules::Rule& rule : runtime::MakeAllRules(*inst->schema)) {
    Status added = inst->rules.AddRule(std::move(rule));
    if (!added.ok()) return added;
  }

  Instance* raw = inst.get();
  instances_[id] = std::move(inst);
  summary_[id] = WorkflowState::kExecuting;
  PersistInstanceStatus(*raw);
  // Per-engine admission count feeding the cluster imbalance metric.
  ctx_->metrics().AddCounter("placement.wf.n" + std::to_string(id_), 1);

  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.Begin(obs::SpanKind::kInstance, id_, id, kInvalidStep, "instance");
  }

  ApplyRoBindings(raw);

  runtime::EventOcc start =
      raw->state.PostLocalEvent(rules::event::WorkflowStartToken());
  raw->rules.Post(start.token);
  Pump(raw);
  return Status::OK();
}

void WorkflowEngine::ApplyRoBindings(Instance* inst) {
  std::vector<runtime::RoBinding> bindings =
      tracker().OnInstanceStart(inst->state.id());
  for (const runtime::RoBinding& binding : bindings) {
    for (const auto& [lead_step, lag_step] : binding.step_pairs) {
      rules::EventToken token =
          rules::event::RelativeOrderToken(binding.leading, lead_step);
      // Guard every rule that can fire the lagging step; the rule ids are
      // regenerated deterministically from the schema.
      bool guarded = false;
      for (const rules::Rule& rule :
           runtime::MakeStepRules(*inst->schema, lag_step)) {
        if (inst->rules.AddPrecondition(rule.id, token).ok()) {
          guarded = true;
        }
      }
      if (!guarded) {
        CREW_LOG(Warn) << "RO binding found no rules for step S" << lag_step
                       << " of " << inst->state.id().ToString();
      }
      ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                    options_.navigation_load);
      // RO wait span: ends when the ordering token is delivered. Keyed
      // by token (not lag step) so DeliverCoordinationEvent can close it.
      obs::Tracer& tr = ctx_->tracer();
      if (tr.enabled()) {
        tr.Begin(obs::SpanKind::kCoord, id_, inst->state.id(), kInvalidStep,
                 "ro.wait:" + rules::TokenNameStr(token),
                 static_cast<int>(sim::MsgCategory::kCoordination));
      }
      Instance* lead = Find(binding.leading);
      if (lead != nullptr) {
        ro_watch_[{binding.leading, lead_step}].push_back(
            {inst->state.id(), token});
        if (lead->state.EventValid(rules::event::StepDoneToken(lead_step))) {
          DeliverCoordinationEvent(inst->state.id(), token);
        }
      } else if (topology_ != nullptr) {
        // Parallel control: the leading instance lives at a peer engine.
        // Coordination broadcasts keep a local log of its progress; watch
        // it, or resolve immediately if the step (or the instance) is
        // already past.
        if (coord_done_log_.count({binding.leading, lead_step}) > 0 ||
            coord_ended_log_.count(binding.leading) > 0) {
          DeliverCoordinationEvent(inst->state.id(), token);
        } else {
          remote_ro_watch_[{binding.leading, lead_step}].push_back(
              {inst->state.id(), token});
        }
      } else {
        // Leading instance already gone (committed/aborted): ordering is
        // trivially satisfied.
        DeliverCoordinationEvent(inst->state.id(), token);
      }
    }
  }
}

void WorkflowEngine::DeliverCoordinationEvent(const InstanceId& instance,
                                              rules::EventToken event_token) {
  Instance* inst = Find(instance);
  if (inst == nullptr) return;
  // Coordination tokens are one-shot; duplicates must not re-fire rules.
  if (inst->state.EventValid(event_token)) return;
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.End(obs::SpanKind::kCoord, id_, instance, kInvalidStep,
           "ro.wait:" + rules::TokenNameStr(event_token));
  }
  inst->state.PostLocalEvent(event_token);
  inst->rules.Post(event_token);
  ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                options_.navigation_load);
  Pump(inst);
}

void WorkflowEngine::NotifyRoWatchers(Instance* inst, StepId step) {
  auto it = ro_watch_.find({inst->state.id(), step});
  if (it == ro_watch_.end()) return;
  std::vector<std::pair<InstanceId, rules::EventToken>> watchers =
      std::move(it->second);
  ro_watch_.erase(it);
  for (const auto& [watcher, token] : watchers) {
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                  options_.navigation_load);
    if (Find(watcher) != nullptr) {
      DeliverCoordinationEvent(watcher, token);
    }
    // Remote watchers learn about this completion through the
    // coordination broadcast; nothing to do here.
  }
}

void WorkflowEngine::SendEngineMessage(NodeId to, const std::string& type,
                                       const std::string& payload) {
  sim::Message out{id_, to, type, payload,
                   sim::MsgCategory::kCoordination};
  (void)ctx_->network().Send(std::move(out));
}

void WorkflowEngine::BroadcastCoordination(Instance* inst,
                                           const std::string& suffix) {
  if (topology_ == nullptr) return;
  if (coordination_->RequirementCount(inst->state.id().workflow) == 0) {
    return;
  }
  runtime::AddEventMsg msg;
  msg.instance = inst->state.id();
  msg.event_token = suffix;
  for (NodeId engine : topology_->AllEngines()) {
    if (engine == id_) continue;
    SendEngineMessage(engine, runtime::wi::kAddEvent, msg.Serialize());
  }
}

bool WorkflowEngine::LockAcquireLocal(const std::string& resource,
                                      const InstanceId& instance,
                                      StepId step,
                                      NodeId requester_engine) {
  LockState& lock = locks_[resource];
  if (lock.held) {
    if (lock.holder == instance && lock.holder_step == step) return true;
    lock.waiters.push_back({instance, step, requester_engine});
    return false;
  }
  lock.held = true;
  lock.holder = instance;
  lock.holder_step = step;
  return true;
}

void WorkflowEngine::LockReleaseLocal(const std::string& resource,
                                      const InstanceId& instance,
                                      StepId step) {
  LockState& lock = locks_[resource];
  if (!lock.held || !(lock.holder == instance) ||
      lock.holder_step != step) {
    return;
  }
  lock.held = false;
  ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                options_.navigation_load);
  while (!lock.waiters.empty()) {
    auto [next_inst, next_step, next_engine] = lock.waiters.front();
    lock.waiters.pop_front();
    if (next_engine == id_) {
      Instance* waiter = Find(next_inst);
      if (waiter == nullptr ||
          waiter->status != WorkflowState::kExecuting) {
        continue;  // waiter aborted/committed meanwhile
      }
      lock.held = true;
      lock.holder = next_inst;
      lock.holder_step = next_step;
      waiter->held_resources[next_step].push_back(resource);
      StartStep(waiter, next_step);
      return;
    }
    // Remote waiter: hand the lock over and notify its engine.
    lock.held = true;
    lock.holder = next_inst;
    lock.holder_step = next_step;
    runtime::AddEventMsg grant;
    grant.instance = next_inst;
    grant.event_token =
        "me.grant:" + resource + ":S" + std::to_string(next_step);
    SendEngineMessage(next_engine, runtime::wi::kAddEvent,
                      grant.Serialize());
    return;
  }
}

bool WorkflowEngine::AcquireMutexes(Instance* inst, StepId step) {
  std::vector<const runtime::MutexReq*> reqs =
      coordination_->MutexesOf(inst->state.id().workflow, step);
  for (const runtime::MutexReq* req : reqs) {
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                  options_.navigation_load);
    NodeId owner = topology_ != nullptr
                       ? topology_->LockOwnerEngine(req->resource)
                       : id_;
    if (owner == id_) {
      if (LockAcquireLocal(req->resource, inst->state.id(), step, id_)) {
        std::vector<std::string>& held = inst->held_resources[step];
        if (std::find(held.begin(), held.end(), req->resource) ==
            held.end()) {
          held.push_back(req->resource);
        }
        continue;
      }
      return false;
    }
    // Remote arbitration: request the lock from the owner engine.
    RemoteLockKey key{req->resource, inst->state.id(), step};
    if (remote_lock_granted_.count(key) > 0) continue;
    if (remote_lock_pending_.insert(key).second) {
      runtime::AddRuleMsg request;
      request.instance = inst->state.id();
      request.rule_id = "me.acquire";
      request.condition_source = req->resource;
      request.action_step = step;
      request.trigger_events = {std::to_string(id_)};
      SendEngineMessage(owner, runtime::wi::kAddRule, request.Serialize());
    }
    return false;  // resumed when the grant message arrives
  }
  return true;
}

void WorkflowEngine::ReleaseMutexes(Instance* inst, StepId step) {
  // Locally arbitrated resources recorded as held.
  auto it = inst->held_resources.find(step);
  if (it != inst->held_resources.end()) {
    std::vector<std::string> resources = std::move(it->second);
    inst->held_resources.erase(it);
    for (const std::string& resource : resources) {
      LockReleaseLocal(resource, inst->state.id(), step);
    }
  }
  // Remotely arbitrated resources.
  std::vector<const runtime::MutexReq*> reqs =
      coordination_->MutexesOf(inst->state.id().workflow, step);
  for (const runtime::MutexReq* req : reqs) {
    RemoteLockKey key{req->resource, inst->state.id(), step};
    if (remote_lock_granted_.erase(key) > 0) {
      runtime::AddRuleMsg release;
      release.instance = inst->state.id();
      release.rule_id = "me.release";
      release.condition_source = req->resource;
      release.action_step = step;
      release.trigger_events = {std::to_string(id_)};
      SendEngineMessage(topology_->LockOwnerEngine(req->resource),
                        runtime::wi::kAddRule, release.Serialize());
    }
    remote_lock_pending_.erase(key);
  }
}

void WorkflowEngine::ChargeCoordination(Instance* inst) {
  int requirements =
      coordination_->RequirementCount(inst->state.id().workflow);
  if (requirements > 0) {
    ctx_->metrics().AddLoad(
        id_, sim::LoadCategory::kCoordination,
        options_.navigation_load * requirements);
  }
}

void WorkflowEngine::Pump(Instance* inst) {
  if (inst->status != WorkflowState::kExecuting) return;
  bool progressed = true;
  while (progressed && inst->status == WorkflowState::kExecuting) {
    progressed = false;
    expr::FunctionEnvironment env = inst->state.DataEnv();
    std::vector<rules::RuleAction> actions =
        inst->rules.CollectFireable(env);
    // Deduplicate multiple rules firing the same step within one batch.
    std::set<StepId> dispatched;
    for (const rules::RuleAction& action : actions) {
      if (action.kind != rules::ActionKind::kExecuteStep) continue;
      if (!dispatched.insert(action.step).second) continue;
      progressed = true;
      StartStep(inst, action.step);
    }
  }
}

void WorkflowEngine::StartStep(Instance* inst, StepId step) {
  if (inst->status != WorkflowState::kExecuting) return;
  StepRecord& record = inst->state.step_record(step);
  if (record.in_flight || inst->starting.count(step)) return;
  inst->starting.insert(step);

  const model::Step& spec = inst->schema->schema().step(step);
  ctx_->metrics().AddLoad(id_, LoadFor(inst->mode),
                                options_.navigation_load);

  // Step lifecycle span opens at scheduling time (first Begin wins, so a
  // lock-blocked re-entry keeps the original start and the span covers
  // the full wait).
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.Begin(obs::SpanKind::kStep, id_, inst->state.id(), step, "step",
             static_cast<int>(CategoryFor(inst->mode)));
  }

  if (!AcquireMutexes(inst, step)) {
    // Blocked on a mutual-exclusion resource; resumed by ReleaseMutexes.
    // Leave `starting` set so duplicate fires stay suppressed; clear it
    // so the resume path can re-enter.
    if (tr.enabled()) {
      tr.Begin(obs::SpanKind::kCoord, id_, inst->state.id(), step,
               "mutex.wait",
               static_cast<int>(sim::MsgCategory::kCoordination));
    }
    inst->starting.erase(step);
    return;
  }
  if (tr.enabled()) {
    // Closes the wait span if this entry was a lock-grant resume; a
    // never-blocked step has no open span and the End is dropped.
    tr.End(obs::SpanKind::kCoord, id_, inst->state.id(), step,
           "mutex.wait");
  }

  runtime::OcrDecision decision = runtime::DecideOcr(spec, inst->state);
  if (tr.enabled()) {
    tr.Instant(obs::SpanKind::kOcr, id_, inst->state.id(), step,
               std::string("ocr.") + runtime::OcrDecisionName(decision), 0,
               {}, static_cast<int>(sim::MsgCategory::kFailureHandling));
  }
  switch (decision) {
    case runtime::OcrDecision::kReuse: {
      // Previous results suffice: emit step.done without re-executing
      // (the OCR saving). Outputs are already in the data table.
      inst->starting.erase(step);
      record.epoch = inst->state.epoch();
      OnStepDone(inst, step, /*reused=*/true);
      return;
    }
    case runtime::OcrDecision::kFirstExecution: {
      DispatchProgram(inst, step, 1.0);
      return;
    }
    case runtime::OcrDecision::kPartialCompIncrReexec:
    case runtime::OcrDecision::kFullCompReexec: {
      const bool partial =
          decision == runtime::OcrDecision::kPartialCompIncrReexec;
      double comp_fraction =
          partial ? spec.ocr.partial_compensation_fraction : 1.0;
      double exec_fraction =
          partial ? spec.ocr.incremental_reexec_fraction : 1.0;
      if (!spec.ocr.compensate_before_reexec) {
        // Loop-body step: plain re-execution, no compensation.
        DispatchProgram(inst, step, 1.0);
        return;
      }
      // Compensation dependent sets: members executed after this step
      // must be compensated first, in reverse execution order (§3).
      std::vector<StepId> chain;
      for (int set_index : inst->schema->comp_dep_sets_of(step)) {
        const model::CompDepSet& set =
            inst->schema->schema().comp_dep_sets()[set_index];
        for (StepId member : set.steps) {
          if (member == step) continue;
          const StepRecord* other = inst->state.FindStepRecord(member);
          if (other != nullptr && other->state == StepRunState::kDone &&
              other->exec_seq > record.exec_seq) {
            chain.push_back(member);
          }
        }
      }
      std::sort(chain.begin(), chain.end(), [inst](StepId a, StepId b) {
        return inst->state.FindStepRecord(a)->exec_seq >
               inst->state.FindStepRecord(b)->exec_seq;
      });
      for (StepId member : chain) EnqueueCompensation(inst, member);
      EnqueueCompensation(inst, step);
      InstanceId id = inst->state.id();
      // comp_fraction scales the compensation program's cost; the
      // compensation dispatch reads it from the queue context below.
      (void)comp_fraction;
      EnqueueBarrier(inst, [this, id, step, exec_fraction]() {
        Instance* resumed = Find(id);
        if (resumed == nullptr ||
            resumed->status != WorkflowState::kExecuting) {
          return;
        }
        DispatchProgram(resumed, step, exec_fraction);
      });
      RunCompQueue(inst);
      return;
    }
  }
}

void WorkflowEngine::DispatchProgram(Instance* inst, StepId step,
                                     double cost_fraction) {
  const model::Step& spec = inst->schema->schema().step(step);
  StepRecord& record = inst->state.step_record(step);
  inst->starting.erase(step);
  if (record.in_flight) return;  // already dispatched (barrier/rule race)
  record.in_flight = true;
  record.attempts += 1;

  runtime::RunProgramMsg msg;
  msg.instance = inst->state.id();
  msg.step = step;
  msg.program = spec.program;
  msg.attempt = record.attempts;
  msg.compensation = false;
  msg.cost_fraction = cost_fraction;
  msg.nominal_cost = spec.cost;
  msg.inputs = inst->state.ResolveInputs(step);
  msg.reply_to = id_;
  msg.epoch = inst->state.epoch();

  const std::vector<NodeId>& eligible =
      deployment_->Eligible(inst->state.id().workflow, step);
  // Least-loaded selection from cached acks; ties by lowest id. Down
  // agents are skipped (the paper's successor-failure rule: pick another
  // eligible agent).
  NodeId chosen = kInvalidNode;
  int64_t best_load = INT64_MAX;
  for (NodeId agent : eligible) {
    if (ctx_->network().IsNodeDown(agent)) continue;
    int64_t load = 0;
    auto it = agent_load_.find(agent);
    if (it != agent_load_.end()) load = it->second;
    if (load < best_load) {
      best_load = load;
      chosen = agent;
    }
  }
  if (chosen == kInvalidNode) {
    // All eligible agents down: retry after their recovery window.
    record.in_flight = false;
    InstanceId id = inst->state.id();
    ctx_->queue().ScheduleAfter(20, [this, id, step]() {
      Instance* retry = Find(id);
      if (retry != nullptr && retry->status == WorkflowState::kExecuting) {
        StartStep(retry, step);
      }
    });
    return;
  }
  msg.designated = chosen;
  record.executed_by = chosen;

  // Only *re*-dispatches are failure/input-change traffic; a step's
  // first execution is normal scheduling even if it happens after a
  // rollback moved the instance past the old failure frontier.
  sim::MsgCategory category = record.attempts > 1
                                  ? CategoryFor(inst->mode)
                                  : sim::MsgCategory::kNormal;
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.Instant(obs::SpanKind::kStep, id_, inst->state.id(), step,
               "step.dispatch", record.attempts,
               "agent=" + std::to_string(chosen),
               static_cast<int>(category));
  }
  // Redundant fan-out: every eligible agent receives the step info and
  // acknowledges; the designated one executes (DESIGN.md §5).
  for (NodeId agent : eligible) {
    sim::Message out{id_, agent, runtime::wi::kRunProgram, msg.Serialize(),
                     category};
    (void)ctx_->network().Send(std::move(out));
  }
}

void WorkflowEngine::EnqueueCompensation(Instance* inst, StepId step) {
  CompItem item;
  item.step = step;
  inst->comp_queue.push_back(std::move(item));
}

void WorkflowEngine::EnqueueBarrier(Instance* inst,
                                    std::function<void()> continuation) {
  CompItem item;
  item.barrier = std::move(continuation);
  inst->comp_queue.push_back(std::move(item));
}

void WorkflowEngine::RunCompQueue(Instance* inst) {
  if (inst->comp_running) return;
  while (!inst->comp_queue.empty()) {
    CompItem item = std::move(inst->comp_queue.front());
    inst->comp_queue.pop_front();
    if (item.barrier) {
      item.barrier();
      continue;
    }
    const StepRecord* record = inst->state.FindStepRecord(item.step);
    if (record == nullptr || record->state != StepRunState::kDone) {
      continue;  // never executed (or already compensated): no action
    }
    inst->comp_running = true;
    DispatchCompensation(inst, item.step);
    return;  // resumed by OnCompensated
  }
}

void WorkflowEngine::DispatchCompensation(Instance* inst, StepId step) {
  const model::Step& spec = inst->schema->schema().step(step);
  StepRecord& record = inst->state.step_record(step);

  runtime::RunProgramMsg msg;
  msg.instance = inst->state.id();
  msg.step = step;
  msg.program = spec.compensation_program.empty()
                    ? spec.program
                    : spec.compensation_program;
  msg.attempt = record.attempts;
  msg.compensation = true;
  msg.cost_fraction = spec.ocr.partial_compensation_fraction;
  msg.nominal_cost = spec.cost;
  msg.inputs = record.prev_inputs;
  msg.reply_to = id_;
  msg.epoch = inst->state.epoch();
  // Compensation must run where the step executed.
  NodeId target = record.executed_by != kInvalidNode
                      ? record.executed_by
                      : deployment_->Eligible(inst->state.id().workflow,
                                              step)
                            .front();
  msg.designated = target;
  ctx_->metrics().AddLoad(id_, LoadFor(inst->mode),
                                options_.navigation_load);
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.Begin(obs::SpanKind::kOcr, id_, inst->state.id(), step, "compensate",
             static_cast<int>(CategoryFor(inst->mode)),
             "agent=" + std::to_string(target));
  }
  sim::Message out{id_, target, runtime::wi::kRunProgram, msg.Serialize(),
                   CategoryFor(inst->mode)};
  (void)ctx_->network().Send(std::move(out));
}

void WorkflowEngine::HandleMessage(const sim::Message& message) {
  if (message.type == runtime::wi::kRunProgramReply) {
    Result<runtime::RunProgramReplyMsg> reply =
        runtime::RunProgramReplyMsg::Parse(message.payload);
    if (!reply.ok()) {
      CREW_LOG(Error) << "engine " << id_ << ": bad reply: "
                      << reply.status().ToString();
      return;
    }
    OnProgramReply(reply.value());
    return;
  }
  if (message.type == runtime::wi::kAddEvent) {
    Result<runtime::AddEventMsg> msg =
        runtime::AddEventMsg::Parse(message.payload);
    if (msg.ok()) OnCoordinationMessage(message);
    return;
  }
  if (message.type == runtime::wi::kAddRule) {
    OnCoordinationMessage(message);
    return;
  }
  if (message.type == runtime::wi::kWorkflowRollback) {
    Result<runtime::WorkflowRollbackMsg> msg =
        runtime::WorkflowRollbackMsg::Parse(message.payload);
    if (msg.ok()) {
      Instance* inst = Find(msg.value().instance);
      if (inst != nullptr && inst->status == WorkflowState::kExecuting) {
        Rollback(inst, msg.value().origin_step, Mode::kFailure,
                 /*rd_induced=*/true);
      }
    }
    return;
  }
  CREW_LOG(Warn) << "engine " << id_ << " ignoring message type "
                 << message.type;
}

void WorkflowEngine::OnCoordinationMessage(const sim::Message& message) {
  if (message.type == runtime::wi::kAddRule) {
    // ME arbitration request from a peer engine.
    Result<runtime::AddRuleMsg> parsed =
        runtime::AddRuleMsg::Parse(message.payload);
    if (!parsed.ok()) return;
    const runtime::AddRuleMsg& req = parsed.value();
    if (req.trigger_events.empty()) return;
    NodeId requester = static_cast<NodeId>(
        strtol(req.trigger_events[0].c_str(), nullptr, 10));
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                  options_.navigation_load);
    if (req.rule_id == "me.acquire") {
      if (LockAcquireLocal(req.condition_source, req.instance,
                           req.action_step, requester)) {
        runtime::AddEventMsg grant;
        grant.instance = req.instance;
        grant.event_token = "me.grant:" + req.condition_source + ":S" +
                            std::to_string(req.action_step);
        SendEngineMessage(requester, runtime::wi::kAddEvent,
                          grant.Serialize());
      }
      // else: queued; granted on release.
    } else if (req.rule_id == "me.release") {
      LockReleaseLocal(req.condition_source, req.instance,
                       req.action_step);
    }
    return;
  }

  // AddEvent: coordination broadcast, ME grant, or a plain RO event.
  Result<runtime::AddEventMsg> parsed =
      runtime::AddEventMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::AddEventMsg& msg = parsed.value();
  const std::string& token = msg.event_token;

  if (token.rfind("me.grant:", 0) == 0) {
    // Remote lock granted: resume the blocked step.
    size_t colon = token.rfind(":S");
    if (colon == std::string::npos) return;
    std::string resource = token.substr(9, colon - 9);
    StepId step =
        static_cast<StepId>(strtol(token.c_str() + colon + 2, nullptr, 10));
    RemoteLockKey key{resource, msg.instance, step};
    remote_lock_pending_.erase(key);
    Instance* inst = Find(msg.instance);
    if (inst == nullptr || inst->status != WorkflowState::kExecuting) {
      // Waiter gone: release immediately so others can proceed.
      runtime::AddRuleMsg release;
      release.instance = msg.instance;
      release.rule_id = "me.release";
      release.condition_source = resource;
      release.action_step = step;
      release.trigger_events = {std::to_string(id_)};
      SendEngineMessage(message.from, runtime::wi::kAddRule,
                        release.Serialize());
      return;
    }
    remote_lock_granted_.insert(key);
    StartStep(inst, step);
    return;
  }

  if (token.rfind("coord.done:S", 0) == 0) {
    StepId step = static_cast<StepId>(
        strtol(token.c_str() + strlen("coord.done:S"), nullptr, 10));
    coord_done_log_.insert({msg.instance, step});
    auto it = remote_ro_watch_.find({msg.instance, step});
    if (it != remote_ro_watch_.end()) {
      std::vector<std::pair<InstanceId, rules::EventToken>> watchers =
          std::move(it->second);
      remote_ro_watch_.erase(it);
      for (const auto& [watcher, ro_token] : watchers) {
        DeliverCoordinationEvent(watcher, ro_token);
      }
    }
    return;
  }

  if (token == "coord.end") {
    coord_ended_log_.insert(msg.instance);
    // Resolve every watch on the ended instance.
    std::vector<std::pair<InstanceId, rules::EventToken>> to_deliver;
    for (auto it = remote_ro_watch_.begin();
         it != remote_ro_watch_.end();) {
      if (it->first.first == msg.instance) {
        for (const auto& watcher : it->second) {
          to_deliver.push_back(watcher);
        }
        it = remote_ro_watch_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& [watcher, ro_token] : to_deliver) {
      DeliverCoordinationEvent(watcher, ro_token);
    }
    return;
  }

  // Plain event (e.g., a relative-ordering token).
  DeliverCoordinationEvent(msg.instance, rules::InternToken(token));
}

void WorkflowEngine::OnProgramReply(
    const runtime::RunProgramReplyMsg& reply) {
  agent_load_[reply.responder] = reply.agent_load;
  if (reply.ack_only) return;

  Instance* inst = Find(reply.instance);
  if (inst == nullptr) return;

  if (reply.compensation) {
    // Compensation bookkeeping is processed even if a newer rollback
    // bumped the epoch meanwhile: the compensation *did* happen at the
    // agent, and the serialized comp queue must never stall on a stale
    // reply (it may hold ME locks and barrier continuations).
    OnCompensated(inst, reply.step);
    return;
  }
  if (reply.epoch < inst->state.epoch()) return;  // stale (pre-rollback)
  if (inst->status != WorkflowState::kExecuting) return;

  StepRecord& record = inst->state.step_record(reply.step);
  if (!record.in_flight) return;  // rollback reset it; result is void
  record.in_flight = false;

  if (reply.success) {
    // Namespace outputs under the step and record the snapshot for OCR.
    const std::string prefix = "S" + std::to_string(reply.step) + ".";
    std::map<std::string, Value> qualified;
    for (const auto& [name, value] : reply.outputs) {
      qualified[prefix + name] = value;
    }
    inst->state.MergeData(qualified);
    record.prev_inputs = inst->state.ResolveInputs(reply.step);
    record.prev_outputs = qualified;
    record.state = StepRunState::kDone;
    record.exec_seq = inst->state.NextExecSeq();
    record.epoch = inst->state.epoch();
    record.executed_by = reply.responder;
    inst->state.SetExecutedBy(reply.step, reply.responder);
    OnStepDone(inst, reply.step, /*reused=*/false);
  } else {
    record.state = StepRunState::kFailed;
    OnStepFailed(inst, reply.step);
  }
}

void WorkflowEngine::OnStepDone(Instance* inst, StepId step, bool reused) {
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    if (reused) {
      tr.Instant(obs::SpanKind::kOcr, id_, inst->state.id(), step,
                 "ocr.result-reused", 0, {},
                 static_cast<int>(sim::MsgCategory::kFailureHandling));
    }
    tr.End(obs::SpanKind::kStep, id_, inst->state.id(), step, "step", 0,
           reused ? "reused" : "done");
  }
  runtime::EventOcc done =
      inst->state.PostLocalEvent(rules::event::StepDoneToken(step));
  inst->rules.Post(done.token);

  // A first-attempt completion means recovery has passed the re-executed
  // region: subsequent work is normal execution again.
  const StepRecord* record = inst->state.FindStepRecord(step);
  if (!reused && record != nullptr && record->attempts <= 1) {
    inst->mode = Mode::kNormal;
  }

  ReleaseMutexes(inst, step);
  NotifyRoWatchers(inst, step);
  BroadcastCoordination(inst, "coord.done:S" + std::to_string(step));
  ChargeCoordination(inst);

  if (inst->schema->is_choice_split(step)) {
    HandleBranchSwitch(inst, step);
  }

  // Commit check: every terminal group has a valid done event.
  if (inst->schema->terminal_group_of(step) >= 0) {
    bool all_groups = true;
    for (const auto& group : inst->schema->schema().terminal_groups()) {
      bool any = false;
      for (StepId member : group) {
        if (inst->state.EventValid(rules::event::StepDoneToken(member))) {
          any = true;
          break;
        }
      }
      if (!any) {
        all_groups = false;
        break;
      }
    }
    if (all_groups) {
      Commit(inst);
      return;
    }
  }
  Pump(inst);
}

void WorkflowEngine::HandleBranchSwitch(Instance* inst, StepId split_step) {
  // Determine which branch the conditions now select.
  expr::FunctionEnvironment env = inst->state.DataEnv();
  StepId chosen = kInvalidStep;
  const model::ControlArc* else_arc = nullptr;
  for (const model::ControlArc* arc : inst->schema->forward_out(split_step)) {
    if (arc->is_else) {
      else_arc = arc;
      continue;
    }
    if (arc->condition && expr::EvaluateCondition(arc->condition, env)) {
      chosen = arc->to;
      break;
    }
  }
  if (chosen == kInvalidStep && else_arc != nullptr) chosen = else_arc->to;
  if (chosen == kInvalidStep) return;

  auto it = inst->taken_branch.find(split_step);
  if (it != inst->taken_branch.end() && it->second != chosen) {
    // Branch switch: compensate the steps that only lie on the old
    // branch (downstream of old entry but not of the new entry), §5.2.
    StepId old_entry = it->second;
    std::vector<StepId> to_comp;
    for (StepId candidate :
         inst->schema->downstream_including(old_entry)) {
      if (inst->schema->IsDownstream(chosen, candidate)) continue;
      const StepRecord* record = inst->state.FindStepRecord(candidate);
      if (record != nullptr && record->state == StepRunState::kDone) {
        to_comp.push_back(candidate);
      }
    }
    std::sort(to_comp.begin(), to_comp.end(),
              [inst](StepId a, StepId b) {
                return inst->state.FindStepRecord(a)->exec_seq >
                       inst->state.FindStepRecord(b)->exec_seq;
              });
    for (StepId step : to_comp) EnqueueCompensation(inst, step);
    RunCompQueue(inst);
  }
  inst->taken_branch[split_step] = chosen;
}

void WorkflowEngine::OnStepFailed(Instance* inst, StepId step) {
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.End(obs::SpanKind::kStep, id_, inst->state.id(), step, "step",
           static_cast<int>(sim::MsgCategory::kFailureHandling), "failed");
    tr.Instant(obs::SpanKind::kOcr, id_, inst->state.id(), step,
               "step.failed", inst->state.step_record(step).attempts, {},
               static_cast<int>(sim::MsgCategory::kFailureHandling));
  }
  runtime::EventOcc fail =
      inst->state.PostLocalEvent(rules::event::StepFailToken(step));
  inst->rules.Post(fail.token);
  ReleaseMutexes(inst, step);

  const model::Step& spec = inst->schema->schema().step(step);
  StepRecord& record = inst->state.step_record(step);
  if (record.attempts >= spec.failure.max_attempts ||
      spec.failure.rollback_to == kInvalidStep) {
    DoAbort(inst);
    return;
  }
  Rollback(inst, spec.failure.rollback_to, Mode::kFailure);
}

void WorkflowEngine::Rollback(Instance* inst, StepId origin, Mode mode,
                              bool rd_induced) {
  if (rd_induced && inst->last_rollback_origin != kInvalidStep &&
      origin >= inst->last_rollback_origin &&
      inst->state.exec_seq() == inst->last_rollback_seq) {
    // The dependent instance has not progressed since its last rollback:
    // a repeated RD-induced rollback is a no-op (and breaks RD rings).
    return;
  }
  inst->last_rollback_origin = origin;
  inst->last_rollback_seq = inst->state.exec_seq();
  inst->mode = mode;
  int64_t new_epoch = inst->state.epoch() + 1;
  inst->state.set_epoch(new_epoch);

  // Two-pronged §5.2 strategy, engine-locally: invalidate old events of
  // downstream steps, discard their pending-rule progress, and reset the
  // fired markers so still-valid triggers can re-fire the origin.
  std::vector<rules::EventToken> invalidated =
      inst->state.InvalidateDownstream(origin, new_epoch);
  for (rules::EventToken token : invalidated) {
    inst->rules.Invalidate(token);
  }
  const model::CompiledSchema* schema = inst->schema.get();
  inst->rules.ResetFiringIf([schema, origin](const rules::Rule& rule) {
    return rule.action.kind == rules::ActionKind::kExecuteStep &&
           schema->IsDownstream(origin, rule.action.step);
  });
  // Steps in flight under the old epoch are void; their replies will be
  // dropped by the epoch check. The recovery work is charged per step
  // actually rolled back (i.e., with an execution record), matching the
  // paper's l·r accounting.
  int64_t touched_steps = 0;
  for (StepId step : schema->downstream_including(origin)) {
    const StepRecord* existing = inst->state.FindStepRecord(step);
    bool touched = existing != nullptr &&
                   (existing->state != StepRunState::kUnknown ||
                    existing->in_flight);
    StepRecord* record = &inst->state.step_record(step);
    record->in_flight = false;
    inst->starting.erase(step);
    if (touched) {
      ++touched_steps;
      ctx_->metrics().AddLoad(id_, LoadFor(mode),
                                    options_.navigation_load);
    }
  }
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.Instant(obs::SpanKind::kOcr, id_, inst->state.id(), origin,
               "rollback", touched_steps,
               std::string("origin=S") + std::to_string(origin) +
                   (rd_induced ? " rd-induced" : "") + " epoch=" +
                   std::to_string(new_epoch),
               static_cast<int>(CategoryFor(mode)));
  }

  // Rollback dependencies: dependent instances roll back too (§3).
  // RD-induced rollbacks do not cascade further, so dependency rings
  // terminate.
  if (!rd_induced)
  for (const auto& [dependent, to_step] :
       tracker().RollbackDependents(inst->state.id(), origin)) {
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                  options_.navigation_load);
    if (tr.enabled()) {
      tr.Instant(obs::SpanKind::kCoord, id_, inst->state.id(), origin,
                 "rd.trigger", to_step, "dependent=" + dependent.ToString(),
                 static_cast<int>(sim::MsgCategory::kCoordination));
    }
    Instance* dep = Find(dependent);
    if (dep != nullptr && dep->status == WorkflowState::kExecuting) {
      Rollback(dep, to_step, Mode::kFailure, /*rd_induced=*/true);
    } else if (topology_ != nullptr) {
      runtime::WorkflowRollbackMsg remote;
      remote.instance = dependent;
      remote.origin_step = to_step;
      remote.state.instance = dependent;
      SendEngineMessage(topology_->OwnerEngine(dependent),
                        runtime::wi::kWorkflowRollback,
                        remote.Serialize());
    }
  }

  Pump(inst);
}

void WorkflowEngine::OnCompensated(Instance* inst, StepId step) {
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.End(obs::SpanKind::kOcr, id_, inst->state.id(), step, "compensate");
  }
  StepRecord& record = inst->state.step_record(step);
  record.state = StepRunState::kCompensated;
  runtime::EventOcc comp =
      inst->state.PostLocalEvent(rules::event::StepCompensatedToken(step));
  inst->rules.Post(comp.token);
  inst->comp_running = false;
  RunCompQueue(inst);
  if (inst->status == WorkflowState::kExecuting) Pump(inst);
}

void WorkflowEngine::ResolveCoordinationAtEnd(Instance* inst) {
  // Ordering against an ended instance is trivially satisfied: release
  // every local watcher still waiting on one of its steps.
  std::vector<std::pair<InstanceId, rules::EventToken>> to_deliver;
  for (auto it = ro_watch_.begin(); it != ro_watch_.end();) {
    if (it->first.first == inst->state.id()) {
      for (const auto& watcher : it->second) to_deliver.push_back(watcher);
      it = ro_watch_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [watcher, token] : to_deliver) {
    if (Find(watcher) != nullptr) DeliverCoordinationEvent(watcher, token);
  }
  // Remotely arbitrated locks still granted to this instance must go
  // back to their owner engines.
  for (auto it = remote_lock_granted_.begin();
       it != remote_lock_granted_.end();) {
    const auto& [resource, holder, step] = *it;
    if (holder == inst->state.id()) {
      runtime::AddRuleMsg release;
      release.instance = holder;
      release.rule_id = "me.release";
      release.condition_source = resource;
      release.action_step = step;
      release.trigger_events = {std::to_string(id_)};
      SendEngineMessage(topology_->LockOwnerEngine(resource),
                        runtime::wi::kAddRule, release.Serialize());
      it = remote_lock_granted_.erase(it);
    } else {
      ++it;
    }
  }
}

void WorkflowEngine::Commit(Instance* inst) {
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.End(obs::SpanKind::kInstance, id_, inst->state.id(), kInvalidStep,
           "instance", 0, "committed");
  }
  inst->status = WorkflowState::kCommitted;
  summary_[inst->state.id()] = WorkflowState::kCommitted;
  PersistInstanceStatus(*inst);
  archived_data_[inst->state.id()] = inst->state.data();
  BroadcastCoordination(inst, "coord.end");
  tracker().OnInstanceEnd(inst->state.id());
  ++committed_count_;
  ctx_->metrics().AddCounter("wf.committed", 1);
  // Release any stray locks (defensive; normally released at step done).
  std::vector<StepId> held;
  for (const auto& [step, resources] : inst->held_resources) {
    held.push_back(step);
  }
  for (StepId step : held) ReleaseMutexes(inst, step);
  ResolveCoordinationAtEnd(inst);
}

Status WorkflowEngine::AbortWorkflow(const InstanceId& instance) {
  auto summary_it = summary_.find(instance);
  if (summary_it == summary_.end()) {
    return Status::NotFound("unknown instance " + instance.ToString());
  }
  if (summary_it->second == WorkflowState::kCommitted) {
    return Status::FailedPrecondition(
        "instance " + instance.ToString() + " already committed");
  }
  Instance* inst = Find(instance);
  if (inst == nullptr || inst->status != WorkflowState::kExecuting) {
    return Status::FailedPrecondition("instance not executing");
  }
  DoAbort(inst);
  return Status::OK();
}

void WorkflowEngine::DoAbort(Instance* inst) {
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.End(obs::SpanKind::kInstance, id_, inst->state.id(), kInvalidStep,
           "instance", static_cast<int>(sim::MsgCategory::kAbort),
           "aborted");
  }
  inst->mode = Mode::kAbort;
  inst->status = WorkflowState::kAborted;
  summary_[inst->state.id()] = WorkflowState::kAborted;
  PersistInstanceStatus(*inst);
  BroadcastCoordination(inst, "coord.end");
  runtime::EventOcc abort =
      inst->state.PostLocalEvent(rules::event::WorkflowAbortToken());
  inst->rules.Post(abort.token);

  // Quiesce: bump the epoch so in-flight replies become stale.
  inst->state.set_epoch(inst->state.epoch() + 1);

  // Release all held resources (local and remotely arbitrated) and free
  // anyone ordered behind this instance.
  std::vector<StepId> held;
  for (const auto& [step, resources] : inst->held_resources) {
    held.push_back(step);
  }
  for (StepId step : held) ReleaseMutexes(inst, step);
  ResolveCoordinationAtEnd(inst);

  // Compensate executed steps marked compensate_on_abort, reverse order.
  std::vector<StepId> to_comp;
  for (StepId step = 1; step <= inst->schema->schema().num_steps();
       ++step) {
    if (!inst->schema->schema().step(step).compensate_on_abort) continue;
    const StepRecord* record = inst->state.FindStepRecord(step);
    if (record != nullptr && record->state == StepRunState::kDone) {
      to_comp.push_back(step);
    }
  }
  std::sort(to_comp.begin(), to_comp.end(), [inst](StepId a, StepId b) {
    return inst->state.FindStepRecord(a)->exec_seq >
           inst->state.FindStepRecord(b)->exec_seq;
  });
  for (StepId step : to_comp) {
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kAbort,
                                  options_.navigation_load);
    EnqueueCompensation(inst, step);
  }
  InstanceId id = inst->state.id();
  EnqueueBarrier(inst, [this, id]() {
    Instance* done = Find(id);
    if (done != nullptr) {
      archived_data_[id] = done->state.data();
    }
    tracker().OnInstanceEnd(id);
    ++aborted_count_;
    ctx_->metrics().AddCounter("wf.aborted", 1);
  });
  RunCompQueue(inst);
}

Status WorkflowEngine::ChangeInputs(const InstanceId& instance,
                                    std::map<std::string, Value> new_inputs) {
  auto summary_it = summary_.find(instance);
  if (summary_it == summary_.end()) {
    return Status::NotFound("unknown instance " + instance.ToString());
  }
  if (summary_it->second != WorkflowState::kExecuting) {
    return Status::FailedPrecondition(
        "instance " + instance.ToString() + " is " +
        runtime::WorkflowStateName(summary_it->second));
  }
  Instance* inst = Find(instance);
  if (inst == nullptr) return Status::NotFound("instance state missing");

  // Identify changed items, merge, and find the earliest affected step.
  std::set<std::string> changed;
  for (const auto& [name, value] : new_inputs) {
    std::optional<Value> old = inst->state.GetData(name);
    if (!old.has_value() || !(*old == value)) changed.insert(name);
    inst->state.SetData(name, value);
  }
  if (changed.empty()) return Status::OK();

  StepId origin = kInvalidStep;
  for (StepId step : inst->schema->topo_order()) {
    const model::Step& spec = inst->schema->schema().step(step);
    bool affected = false;
    for (const std::string& input : spec.inputs) {
      if (changed.count(input)) {
        affected = true;
        break;
      }
    }
    if (!affected) continue;
    const StepRecord* record = inst->state.FindStepRecord(step);
    if (record != nullptr && (record->state == StepRunState::kDone ||
                              record->in_flight)) {
      origin = step;
      break;
    }
    // First consumer not yet executed: it will pick the new values up
    // naturally; nothing to roll back.
    return Status::OK();
  }
  if (origin == kInvalidStep) return Status::OK();

  Rollback(inst, origin, Mode::kInputChange);
  return Status::OK();
}

std::string WorkflowEngine::DebugInstance(const InstanceId& instance) const {
  std::string out = instance.ToString() + ": ";
  const Instance* inst = Find(instance);
  auto it = summary_.find(instance);
  out += it == summary_.end() ? "unknown"
                              : runtime::WorkflowStateName(it->second);
  if (inst == nullptr) return out + " (no state)\n";
  out += " epoch=" + std::to_string(inst->state.epoch());
  out += " comp_queue=" + std::to_string(inst->comp_queue.size());
  out += inst->comp_running ? " comp_running" : "";
  out += "\n";
  for (StepId s = 1; s <= inst->schema->schema().num_steps(); ++s) {
    const StepRecord* r = inst->state.FindStepRecord(s);
    if (r == nullptr) continue;
    out += "  S" + std::to_string(s) + " " +
           runtime::StepRunStateName(r->state) +
           (r->in_flight ? " in-flight" : "") +
           " attempts=" + std::to_string(r->attempts) + "\n";
  }
  for (const auto& [rule_id, missing] : inst->rules.PendingRules()) {
    out += "  pending " + rule_id + " missing:";
    for (const std::string& token : missing) out += " " + token;
    out += "\n";
  }
  for (StepId s : inst->starting) {
    out += "  starting S" + std::to_string(s) + "\n";
  }
  for (const auto& [resource, lock] : locks_) {
    if (lock.held && lock.holder == instance) {
      out += "  holds " + resource + " (S" +
             std::to_string(lock.holder_step) + ")\n";
    }
    for (const auto& [winst, wstep, wengine] : lock.waiters) {
      if (winst == instance) {
        out += "  waits-for " + resource + " (S" +
               std::to_string(wstep) + ") held by " +
               lock.holder.ToString() + "\n";
      }
    }
  }
  for (const auto& [resource, rinst, rstep] : remote_lock_pending_) {
    if (rinst == instance) {
      out += "  remote-pending " + resource + " (S" +
             std::to_string(rstep) + ")\n";
    }
  }
  for (const auto& [resource, rinst, rstep] : remote_lock_granted_) {
    if (rinst == instance) {
      out += "  remote-granted " + resource + " (S" +
             std::to_string(rstep) + ")\n";
    }
  }
  return out;
}

std::string WorkflowEngine::DebugLocks() const {
  std::string out;
  for (const auto& [resource, lock] : locks_) {
    if (!lock.held && lock.waiters.empty()) continue;
    out += resource + ": ";
    out += lock.held ? ("held by " + lock.holder.ToString() + " S" +
                        std::to_string(lock.holder_step))
                     : "free";
    for (const auto& [winst, wstep, wengine] : lock.waiters) {
      out += " | waiter " + winst.ToString() + " S" +
             std::to_string(wstep) + " @e" + std::to_string(wengine);
    }
    out += "\n";
  }
  return out;
}

WorkflowState WorkflowEngine::QueryStatus(const InstanceId& instance) const {
  auto it = summary_.find(instance);
  return it == summary_.end() ? WorkflowState::kUnknown : it->second;
}

std::map<std::string, Value> WorkflowEngine::FinalData(
    const InstanceId& instance) const {
  auto it = archived_data_.find(instance);
  if (it != archived_data_.end()) return it->second;
  const Instance* inst = Find(instance);
  if (inst != nullptr) return inst->state.data();
  return {};
}

}  // namespace crew::central
