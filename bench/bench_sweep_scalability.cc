// Figure-style sweep A: per-node load vs the number of nodes that share
// it — engines e (1-8) for parallel control, agents z (10-100) for
// distributed control — under normal execution plus failures. This is
// the scalability argument of §6 rendered as series.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

crew::workload::Params BaseParams() {
  crew::workload::Params params;
  params.num_schemas = 10;
  params.instances_per_schema = 10;
  params.mutex_steps = 0;
  params.relative_order_steps = 0;
  params.rollback_dep_steps = 0;
  return params;
}

double BusiestNodeLoad(const crew::workload::RunResult& result,
                       const std::vector<crew::NodeId>& nodes,
                       int64_t l) {
  using crew::sim::LoadCategory;
  int64_t best = 0;
  for (crew::NodeId node : nodes) {
    int64_t sum =
        result.metrics.LoadAt(node, LoadCategory::kNavigation) +
        result.metrics.LoadAt(node, LoadCategory::kFailureHandling) +
        result.metrics.LoadAt(node, LoadCategory::kInputChange) +
        result.metrics.LoadAt(node, LoadCategory::kAbort);
    best = std::max(best, sum);
  }
  return static_cast<double>(best) /
         (static_cast<double>(l) * result.instances());
}

}  // namespace

int main(int argc, char** argv) {
  crew::bench::BenchSession session("sweep_scalability", argc, argv);
  crew::workload::Params base = BaseParams();
  crew::bench::PrintHeader(
      "Sweep A: busiest-node load vs engines (parallel) / agents "
      "(distributed)",
      base);

  printf("\nparallel control: load at busiest engine (units of l, per "
         "instance)\n");
  printf("%4s | %10s | %12s\n", "e", "measured", "paper s/e");
  printf("%s\n", std::string(32, '-').c_str());
  for (int e : {1, 2, 4, 8}) {
    crew::workload::Params params = base;
    params.num_engines = e;
    crew::workload::RunResult result = crew::workload::RunWorkload(
        params, crew::workload::Architecture::kParallel,
        session.tracer());
    session.Record("parallel-e=" + std::to_string(e), result);
    printf("%4d | %10.3f | %12.3f\n", e,
           BusiestNodeLoad(result, crew::bench::ParallelEngineNodes(e),
                           params.navigation_load),
           static_cast<double>(params.steps_per_workflow) / e);
  }

  printf("\ndistributed control: load at busiest agent (units of l, per "
         "instance)\n");
  printf("%4s | %10s | %12s\n", "z", "measured", "paper s/z");
  printf("%s\n", std::string(32, '-').c_str());
  for (int z : {10, 25, 50, 100}) {
    crew::workload::Params params = base;
    params.num_agents = z;
    crew::workload::RunResult result = crew::workload::RunWorkload(
        params, crew::workload::Architecture::kDistributed);
    session.Record("distributed-z=" + std::to_string(z), result);
    printf("%4d | %10.3f | %12.3f\n", z,
           BusiestNodeLoad(result, crew::bench::DistributedAgentNodes(z),
                           params.navigation_load),
           static_cast<double>(params.steps_per_workflow) / z);
  }
  printf(
      "\nExpected shape: both series fall roughly as 1/nodes; the\n"
      "distributed agents end far below any engine (z >> e).\n");
  session.Finish();
  return 0;
}
