#ifndef CREW_RUNTIME_PROGRAMS_H_
#define CREW_RUNTIME_PROGRAMS_H_

#include <functional>
#include <map>
#include <string>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"

namespace crew::runtime {

/// Inputs handed to a step program when executed (or compensated).
/// Output names are unqualified ("O1"); the runtime namespaces them under
/// the step ("S3.O1") before writing to the instance data table.
struct ProgramContext {
  InstanceId instance;
  StepId step = kInvalidStep;
  int attempt = 1;           ///< 1 on first execution, grows on retries
  bool compensation = false; ///< true when running a compensation program
  std::map<std::string, Value> inputs;
  Rng* rng = nullptr;        ///< per-agent stream; may be null in tests
};

struct ProgramOutcome {
  bool success = true;
  std::map<std::string, Value> outputs;  // unqualified: "O1", "O2"...
  int64_t cost = 0;  ///< instructions actually consumed (0 = step's nominal)
};

using ProgramFn = std::function<ProgramOutcome(const ProgramContext&)>;

/// Step programs are black boxes registered by name. The registry is
/// shared (read-only at run time) by all agents/engines.
class ProgramRegistry {
 public:
  /// Registers (or replaces) a program.
  void Register(const std::string& name, ProgramFn fn);

  bool Contains(const std::string& name) const;

  /// Runs the program; kNotFound if not registered.
  Result<ProgramOutcome> Run(const std::string& name,
                             const ProgramContext& context) const;

  /// Registers the builtin programs used by tests/examples:
  ///  - "noop": succeeds, O1 = attempt number;
  ///  - "copy": O<i> = i-th input value (in name order);
  ///  - "sum":  O1 = sum of numeric inputs;
  ///  - "fail_always": always fails;
  ///  - "negate": O1 = -first numeric input.
  void RegisterBuiltins();

  /// Registers "<base>" failing with probability `pf` per attempt (rng
  /// draw), else O1 = attempt.
  void RegisterFlaky(const std::string& name, double pf);

  /// Registers "<base>" failing on attempts 1..n and succeeding after.
  void RegisterFailFirstN(const std::string& name, int n);

 private:
  std::map<std::string, ProgramFn> programs_;
};

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_PROGRAMS_H_
