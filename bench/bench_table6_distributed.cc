// Reproduces Table 6: Load and Physical Messages in Distributed Workflow
// Control (agents navigate by exchanging workflow packets).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  crew::bench::BenchSession session("table6_distributed", argc, argv,
                                    /*default_json=*/true);
  crew::workload::Params params;  // Table 3 midpoints
  params.num_schemas = 20;
  params.instances_per_schema = 10;
  params.num_agents = 50;

  crew::workload::RunResult result = crew::workload::RunWorkload(
      params, crew::workload::Architecture::kDistributed,
      session.tracer());
  session.Record("distributed", result);

  crew::bench::PrintTable(
      "Table 6: Distributed Workflow Control (paper vs measured)", params,
      result, crew::analysis::DistributedLoad(params),
      crew::analysis::DistributedMessages(params),
      crew::bench::DistributedAgentNodes(params.num_agents));
  session.Finish();
  return 0;
}
