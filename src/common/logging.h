#ifndef CREW_COMMON_LOGGING_H_
#define CREW_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace crew {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Process-wide log sink. Defaults to kWarn so tests and benches stay
/// quiet; examples raise it to kInfo to narrate the protocol.
/// Write() is thread-safe; interleaved engine/agent lines stay whole.
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Writes one line to stderr if `level` is enabled. Lines carry the
  /// level and, while a virtual clock is registered, the current
  /// virtual time: "[INFO  t=123] ...".
  static void Write(LogLevel level, const std::string& message);

  /// Registers the active simulation's virtual clock so log lines are
  /// attributable to a point in virtual time. The pointer must stay
  /// valid until cleared. The Simulator does this automatically.
  static void SetVirtualClock(const int64_t* clock);
  /// Clears the clock, but only if `clock` is the one registered —
  /// a destructed simulator must not unhook a newer one's clock.
  static void ClearVirtualClock(const int64_t* clock);
};

namespace log_internal {

/// Stream-style one-line log statement; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::Write(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace crew

#define CREW_LOG(severity)                                        \
  if (::crew::Logger::level() <= ::crew::LogLevel::k##severity)   \
  ::crew::log_internal::LogLine(::crew::LogLevel::k##severity)

#endif  // CREW_COMMON_LOGGING_H_
