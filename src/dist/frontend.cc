#include "dist/frontend.h"

#include <cstring>

#include "common/logging.h"

namespace crew::dist {

FrontEnd::FrontEnd(NodeId id, sim::Context* context,
                   const model::Deployment* deployment,
                   const runtime::CoordinationSpec* coordination)
    : id_(id),
      ctx_(context),
      deployment_(deployment),
      tracker_(coordination) {
  ctx_->network().Register(id_, this);
}

void FrontEnd::RegisterSchema(model::CompiledSchemaPtr schema) {
  schemas_[schema->schema().name()] = std::move(schema);
}

Result<NodeId> FrontEnd::CoordinationAgentFor(
    const std::string& workflow) const {
  auto it = schemas_.find(workflow);
  if (it == schemas_.end()) {
    return Status::NotFound("no schema registered as " + workflow);
  }
  return deployment_->CoordinationAgent(*it->second);
}

NodeId FrontEnd::CoordinatorOf(const InstanceId& instance) const {
  auto it = coordinators_.find(instance);
  return it == coordinators_.end() ? kInvalidNode : it->second;
}

Result<NodeId> FrontEnd::RouteFor(const InstanceId& instance) const {
  NodeId placed = CoordinatorOf(instance);
  if (placed != kInvalidNode) return placed;
  return CoordinationAgentFor(instance.workflow);
}

Result<InstanceId> FrontEnd::StartWorkflow(
    const std::string& workflow, std::map<std::string, Value> inputs) {
  Result<NodeId> coordination_agent = CoordinationAgentFor(workflow);
  if (!coordination_agent.ok()) return coordination_agent.status();

  runtime::WorkflowStartMsg msg;
  msg.instance = {workflow, next_instance_++};
  msg.inputs = std::move(inputs);
  msg.reply_to = id_;

  NodeId target = coordination_agent.value();
  if (placement_ != nullptr) {
    auto schema_it = schemas_.find(workflow);
    const std::vector<NodeId>& candidates = deployment_->Eligible(
        workflow, schema_it->second->schema().start_step());
    NodeId placed = placement_->Place(msg.instance, candidates);
    if (placed != kInvalidNode) {
      target = placed;
      coordinators_[msg.instance] = placed;
    }
  }

  // Bind coordinated-execution requirements against live instances: the
  // new instance lags every binding's leading instance.
  for (const runtime::RoBinding& binding :
       tracker_.OnInstanceStart(msg.instance)) {
    for (const auto& [lead_step, lag_step] : binding.step_pairs) {
      runtime::RoLink link;
      link.other = binding.leading;
      link.my_step = lag_step;
      link.other_step = lead_step;
      link.leading = false;
      msg.ro_links.push_back(link);
    }
  }

  statuses_[msg.instance] = runtime::WorkflowState::kExecuting;
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    // End-to-end span as the submitter sees it: closes when a status
    // reply first reports the instance committed or aborted. Named
    // "instance.e2e" (not "instance") so it does not double-feed the
    // instance-latency histogram owned by the coordination agent.
    tr.Begin(obs::SpanKind::kInstance, id_, msg.instance, kInvalidStep,
             "instance.e2e", static_cast<int>(sim::MsgCategory::kAdmin));
  }
  sim::Message out{id_, target, runtime::wi::kWorkflowStart,
                   msg.Serialize(), sim::MsgCategory::kAdmin};
  CREW_RETURN_IF_ERROR(ctx_->network().Send(std::move(out)));
  return msg.instance;
}

Status FrontEnd::RequestAbort(const InstanceId& instance) {
  Result<NodeId> coordination_agent = RouteFor(instance);
  if (!coordination_agent.ok()) return coordination_agent.status();
  runtime::WorkflowAbortMsg msg;
  msg.instance = instance;
  sim::Message out{id_, coordination_agent.value(),
                   runtime::wi::kWorkflowAbort, msg.Serialize(),
                   sim::MsgCategory::kAdmin};
  return ctx_->network().Send(std::move(out));
}

Status FrontEnd::RequestChangeInputs(
    const InstanceId& instance, std::map<std::string, Value> new_inputs) {
  Result<NodeId> coordination_agent = RouteFor(instance);
  if (!coordination_agent.ok()) return coordination_agent.status();
  runtime::WorkflowChangeInputsMsg msg;
  msg.instance = instance;
  msg.new_inputs = std::move(new_inputs);
  sim::Message out{id_, coordination_agent.value(),
                   runtime::wi::kWorkflowChangeInputs, msg.Serialize(),
                   sim::MsgCategory::kAdmin};
  return ctx_->network().Send(std::move(out));
}

Status FrontEnd::RequestStatus(const InstanceId& instance) {
  Result<NodeId> coordination_agent = RouteFor(instance);
  if (!coordination_agent.ok()) return coordination_agent.status();
  runtime::WorkflowStatusMsg msg;
  msg.instance = instance;
  msg.reply_to = id_;
  sim::Message out{id_, coordination_agent.value(),
                   runtime::wi::kWorkflowStatus, msg.Serialize(),
                   sim::MsgCategory::kAdmin};
  return ctx_->network().Send(std::move(out));
}

runtime::WorkflowState FrontEnd::KnownStatus(
    const InstanceId& instance) const {
  auto it = statuses_.find(instance);
  return it == statuses_.end() ? runtime::WorkflowState::kUnknown
                               : it->second;
}

void FrontEnd::HandleMessage(const sim::Message& message) {
  if (message.type == runtime::wi::kAddEvent) {
    // Rollback-dependency notice from a rollback-target agent: fan the
    // rollback out to the live dependent instances (§3). The front end
    // holds the only global view of the live instance set, mirroring its
    // administrative role in §4.1.
    Result<runtime::AddEventMsg> parsed =
        runtime::AddEventMsg::Parse(message.payload);
    if (!parsed.ok()) return;
    const std::string& token = parsed.value().event_token;
    if (token.rfind("rd.rollback:S", 0) != 0) return;
    StepId origin = static_cast<StepId>(
        strtol(token.c_str() + strlen("rd.rollback:S"), nullptr, 10));
    for (const auto& [dependent, to_step] :
         tracker_.RollbackDependents(parsed.value().instance, origin)) {
      auto schema_it = schemas_.find(dependent.workflow);
      if (schema_it == schemas_.end()) continue;
      runtime::WorkflowRollbackMsg rollback;
      rollback.instance = dependent;
      rollback.origin_step = to_step;
      rollback.new_epoch = 0;  // RD marker: target computes its own epoch
      rollback.state.instance = dependent;
      for (NodeId agent :
           deployment_->Eligible(dependent.workflow, to_step)) {
        sim::Message out{id_, agent, runtime::wi::kWorkflowRollback,
                         rollback.Serialize(),
                         sim::MsgCategory::kCoordination};
        (void)ctx_->network().Send(std::move(out));
      }
    }
    return;
  }
  if (message.type != runtime::wi::kWorkflowStatusReply) {
    CREW_LOG(Warn) << "front end ignoring message type " << message.type;
    return;
  }
  Result<runtime::WorkflowStatusReplyMsg> parsed =
      runtime::WorkflowStatusReplyMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::WorkflowStatusReplyMsg& msg = parsed.value();
  runtime::WorkflowState previous = KnownStatus(msg.instance);
  statuses_[msg.instance] = msg.state;
  if (previous != msg.state) {
    if (msg.state == runtime::WorkflowState::kCommitted ||
        msg.state == runtime::WorkflowState::kAborted) {
      obs::Tracer& tr = ctx_->tracer();
      if (tr.enabled()) {
        tr.End(obs::SpanKind::kInstance, id_, msg.instance, kInvalidStep,
               "instance.e2e", 0,
               msg.state == runtime::WorkflowState::kCommitted
                   ? "committed"
                   : "aborted");
      }
    }
    if (msg.state == runtime::WorkflowState::kCommitted) {
      ++known_committed_;
      tracker_.OnInstanceEnd(msg.instance);
      if (placement_ != nullptr) placement_->Forget(msg.instance);
    } else if (msg.state == runtime::WorkflowState::kAborted) {
      ++known_aborted_;
      tracker_.OnInstanceEnd(msg.instance);
      if (placement_ != nullptr) placement_->Forget(msg.instance);
    }
  }
}

}  // namespace crew::dist
