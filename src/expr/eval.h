#ifndef CREW_EXPR_EVAL_H_
#define CREW_EXPR_EVAL_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "common/value.h"
#include "expr/ast.h"

namespace crew::expr {

/// Variable resolution interface for expression evaluation. A workflow
/// instance's data table implements this; tests use map-backed ones.
class Environment {
 public:
  virtual ~Environment() = default;

  /// Returns the current binding of `name`, or nullopt if unbound.
  virtual std::optional<Value> Lookup(const std::string& name) const = 0;

  /// Returns the binding of `name` captured at the step's *previous*
  /// execution, for the changed() builtin in OCR re-execution conditions.
  /// Default: unbound.
  virtual std::optional<Value> LookupPrevious(
      const std::string& /*name*/) const {
    return std::nullopt;
  }
};

/// Environment backed by a std::function, convenient for tests.
class FunctionEnvironment : public Environment {
 public:
  using LookupFn = std::function<std::optional<Value>(const std::string&)>;

  explicit FunctionEnvironment(LookupFn lookup, LookupFn previous = nullptr)
      : lookup_(std::move(lookup)), previous_(std::move(previous)) {}

  std::optional<Value> Lookup(const std::string& name) const override {
    return lookup_(name);
  }
  std::optional<Value> LookupPrevious(
      const std::string& name) const override {
    return previous_ ? previous_(name) : std::nullopt;
  }

 private:
  LookupFn lookup_;
  LookupFn previous_;
};

/// Evaluates the tree against the environment. Errors:
///  - kNotFound for an unbound variable (except inside exists()/changed()),
///  - kInvalidArgument for type mismatches and division by zero.
Result<Value> Evaluate(const NodePtr& root, const Environment& env);

/// Evaluates and coerces to truthiness. Unbound variables make the
/// condition false rather than an error — the paper's rules simply do not
/// fire until their data items arrive.
bool EvaluateCondition(const NodePtr& root, const Environment& env);

}  // namespace crew::expr

#endif  // CREW_EXPR_EVAL_H_
