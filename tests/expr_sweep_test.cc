// Parameterized property sweeps over the condition-expression language:
// evaluation tables, round-trip stability, and operator laws checked
// across many generated cases.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/eval.h"
#include "expr/parser.h"

namespace crew::expr {
namespace {

class TableEnv : public Environment {
 public:
  std::map<std::string, Value> now;
  std::optional<Value> Lookup(const std::string& name) const override {
    auto it = now.find(name);
    if (it == now.end()) return std::nullopt;
    return it->second;
  }
};

struct EvalCase {
  const char* source;
  int64_t x;
  bool expected;
};

class ConditionTable : public ::testing::TestWithParam<EvalCase> {};

TEST_P(ConditionTable, EvaluatesAsExpected) {
  const EvalCase& c = GetParam();
  TableEnv env;
  env.now["x"] = Value(c.x);
  env.now["name"] = Value("widget");
  Result<NodePtr> parsed = ParseExpression(c.source);
  ASSERT_TRUE(parsed.ok()) << c.source;
  EXPECT_EQ(EvaluateCondition(parsed.value(), env), c.expected)
      << c.source << " with x=" << c.x;
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, ConditionTable,
    ::testing::Values(
        EvalCase{"x > 5", 6, true}, EvalCase{"x > 5", 5, false},
        EvalCase{"x >= 5", 5, true}, EvalCase{"x != 3", 3, false},
        EvalCase{"x % 2 == 0", 4, true}, EvalCase{"x % 2 == 0", 7, false},
        EvalCase{"x * 2 + 1 == 9", 4, true},
        EvalCase{"-x == 0 - x", 17, true},
        EvalCase{"x > 0 and x < 10", 5, true},
        EvalCase{"x > 0 and x < 10", 15, false},
        EvalCase{"x < 0 or x > 10", 15, true},
        EvalCase{"not (x == 1)", 1, false},
        EvalCase{"name == \"widget\"", 0, true},
        EvalCase{"name != \"gadget\"", 0, true},
        EvalCase{"exists(x) and not exists(y)", 0, true},
        EvalCase{"min(x, 10) == x", 3, true},
        EvalCase{"max(x, 10) == 10", 3, true},
        EvalCase{"abs(x - 10) <= 2", 9, true},
        EvalCase{"abs(x - 10) <= 2", 5, false},
        EvalCase{"x / 2 == 3", 7, true},  // integer division
        EvalCase{"missing > 1", 5, false}  // unbound -> false condition
        ));

/// Random-expression round-trip: parse -> ToString -> parse must be
/// semantically identical on 200 generated arithmetic expressions.
TEST(ExpressionProperty, RandomRoundTripStable) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    // Build a random arithmetic comparison over x, y.
    const char* ops[] = {"+", "-", "*"};
    const char* cmps[] = {"<", "<=", "==", "!=", ">", ">="};
    std::string source = "x " + std::string(ops[rng.Index(3)]) + " " +
                         std::to_string(rng.Uniform(1, 9)) + " " +
                         cmps[rng.Index(6)] + " y " +
                         ops[rng.Index(3)] + " " +
                         std::to_string(rng.Uniform(1, 9));
    Result<NodePtr> first = ParseExpression(source);
    ASSERT_TRUE(first.ok()) << source;
    Result<NodePtr> second = ParseExpression(first.value()->ToString());
    ASSERT_TRUE(second.ok()) << first.value()->ToString();

    TableEnv env;
    for (int probe = 0; probe < 5; ++probe) {
      env.now["x"] = Value(rng.Uniform(-20, 20));
      env.now["y"] = Value(rng.Uniform(-20, 20));
      Result<Value> a = Evaluate(first.value(), env);
      Result<Value> b = Evaluate(second.value(), env);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value(), b.value()) << source;
    }
  }
}

/// De Morgan's laws hold for the evaluator over random boolean inputs.
TEST(ExpressionProperty, DeMorgan) {
  Result<NodePtr> lhs = ParseExpression("not (p and q)");
  Result<NodePtr> rhs = ParseExpression("not p or not q");
  Result<NodePtr> lhs2 = ParseExpression("not (p or q)");
  Result<NodePtr> rhs2 = ParseExpression("not p and not q");
  ASSERT_TRUE(lhs.ok() && rhs.ok() && lhs2.ok() && rhs2.ok());
  for (bool p : {false, true}) {
    for (bool q : {false, true}) {
      TableEnv env;
      env.now["p"] = Value(p);
      env.now["q"] = Value(q);
      EXPECT_EQ(Evaluate(lhs.value(), env).value(),
                Evaluate(rhs.value(), env).value());
      EXPECT_EQ(Evaluate(lhs2.value(), env).value(),
                Evaluate(rhs2.value(), env).value());
    }
  }
}

/// Comparison trichotomy: exactly one of <, ==, > holds for numerics.
TEST(ExpressionProperty, Trichotomy) {
  Rng rng(77);
  Result<NodePtr> lt = ParseExpression("x < y");
  Result<NodePtr> eq = ParseExpression("x == y");
  Result<NodePtr> gt = ParseExpression("x > y");
  ASSERT_TRUE(lt.ok() && eq.ok() && gt.ok());
  for (int trial = 0; trial < 100; ++trial) {
    TableEnv env;
    env.now["x"] = Value(rng.Uniform(-5, 5));
    env.now["y"] = Value(rng.Uniform(-5, 5));
    int holds = 0;
    holds += Evaluate(lt.value(), env).value().AsBool() ? 1 : 0;
    holds += Evaluate(eq.value(), env).value().AsBool() ? 1 : 0;
    holds += Evaluate(gt.value(), env).value().AsBool() ? 1 : 0;
    EXPECT_EQ(holds, 1);
  }
}

/// Malformed inputs never parse: a fuzz-lite sweep of broken sources.
TEST(ExpressionProperty, MalformedInputsRejected) {
  const char* broken[] = {
      "",        "+",        "x +",      "(x",      "x)",
      "x ==",    "and x",    "1 2",      "x > > 1", "min(",
      "min(1,",  "\"open",   "x & y",    "x | y",   "= x",
      "not",     "()",       ", x",      "exists(1 +",
  };
  for (const char* source : broken) {
    EXPECT_FALSE(ParseExpression(source).ok()) << "'" << source << "'";
  }
}

}  // namespace
}  // namespace crew::expr
