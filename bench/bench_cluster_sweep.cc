// Scale-out cluster sweep: for each process count N, spawns a real
// N-process dist deployment (front end at ep0, one full agent per
// remaining endpoint) via net::Supervisor, open-loop drives W workflow
// instances through the "drive" control verb, and reports throughput
// (wf/s), pooled sojourn percentiles (exact cross-process histogram
// merge), per-node placement imbalance (max/mean instances routed) and
// admin-message cost per instance. The last number is the one to watch:
// with --purge=broadcast every finished instance costs O(agents) purge
// messages — the first scaling wall — while the default targeted purge
// keeps it flat (see EXPERIMENTS.md for the before/after curves).
//
// Flags:
//   --smoke            one small 8-process config (<~30s) for CI
//   --counts=8,16,32   process counts to sweep (default 8,16,32,64)
//   --workflows=N      instances per config (default 2000)
//   --rate=N           open-loop starts/s (0 = blast, default 0)
//   --placement=P      static | rr | hash | least (default hash)
//   --classes=N        workload classes Wf0..Wf<N-1> (default 8)
//   --purge=P          targeted | broadcast (default targeted)
//   --codec=C          kv | binary (default binary)
//   --tick-us=N        virtual tick length in the nodes (default 20)
//   --timeout-ms=N     per-config quiesce timeout (default 600000)
//   --json=PATH        output path (default BENCH_cluster.json)
//   --node-bin=PATH    crew_node binary (default: compiled-in path)
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/supervisor.h"
#include "net/telemetry.h"
#include "net/testbed.h"
#include "net/topology.h"
#include "obs/trace.h"

#ifndef CREW_NODE_BIN
#define CREW_NODE_BIN ""
#endif

namespace crew {
namespace {

struct SweepFlags {
  std::vector<int> counts = {8, 16, 32, 64};
  int workflows = 2000;
  int64_t rate = 0;
  std::string placement = "hash";
  int classes = 8;
  std::string purge = "targeted";
  std::string codec = "binary";
  int64_t tick_us = 10;
  int timeout_ms = 600000;
  std::string json_path = "BENCH_cluster.json";
  std::string node_bin = CREW_NODE_BIN;
  bool smoke = false;
};

struct ConfigResult {
  int processes = 0;
  int agents = 0;
  int workflows = 0;
  double wall_ms = 0;
  double wf_per_sec = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t messages_total = 0;
  double messages_per_wf = 0;
  int64_t sojourn_samples = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  net::PlacementImbalance imbalance;
  bool ok = false;
  std::string error;
};

std::vector<int> ParseCounts(const std::string& text) {
  std::vector<int> out;
  const char* p = text.c_str();
  while (*p != '\0') {
    int v = std::atoi(p);
    if (v > 1) out.push_back(v);
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return out;
}

ConfigResult RunConfig(const SweepFlags& flags, int processes) {
  ConfigResult r;
  r.processes = processes;
  r.agents = processes - 1;  // front end at ep0, one agent per other ep
  r.workflows = flags.workflows;

  char dir_template[] = "/tmp/crew_cluster_sweep_XXXXXX";
  char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    r.error = "mkdtemp failed";
    return r;
  }

  net::TestbedOptions testbed_options;
  testbed_options.mode = "dist";
  testbed_options.num_agents = r.agents;
  testbed_options.placement = flags.placement;
  testbed_options.num_classes = flags.classes;
  testbed_options.purge = flags.purge;

  Result<net::Topology> topology =
      net::Testbed::UnixTopology(testbed_options, dir, processes);
  if (!topology.ok()) {
    r.error = topology.status().ToString();
    return r;
  }
  std::string topology_file = std::string(dir) + "/topology.txt";
  Status saved = topology.value().Save(topology_file);
  if (!saved.ok()) {
    r.error = saved.ToString();
    return r;
  }

  net::LaunchOptions options;
  options.node_binary = flags.node_bin;
  options.topology_file = topology_file;
  options.mode = "dist";
  options.num_agents = r.agents;
  options.num_instances = flags.workflows;
  options.tick_us = flags.tick_us;
  // Throughput run: a blast legitimately queues healthy steps past the
  // equivalence default, and overdue probes are not what we measure.
  // Kept as small as that allows — the pending timers also gate
  // quiescence, so their real-time span (ticks * tick_us) is a flat
  // addition to every config's wall clock.
  options.pending_timeout = 50000;
  options.codec = flags.codec;
  options.placement = flags.placement;
  options.num_classes = flags.classes;
  options.purge = flags.purge;
  options.drive_on_start = false;  // the "drive" verb injects the load
  options.telemetry_interval_ms = 200;

  net::Supervisor supervisor(topology.value(), options);
  Status started = supervisor.StartAll();
  if (!started.ok()) {
    r.error = started.ToString();
    return r;
  }

  // The placer (front end) lives at ep0 by UnixTopology construction.
  net::Endpoint control;
  control.kind = net::Endpoint::Kind::kUnix;
  control.path = std::string(dir) + "/ep0.sock";

  // Wait until every control socket answers before starting the clock.
  for (const auto& process : supervisor.processes()) {
    bool up = false;
    for (int attempt = 0; attempt < 500 && !up; ++attempt) {
      up = supervisor.Request(process.endpoint, "ping").ok();
      if (!up) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (!up) {
      r.error = "node " + process.endpoint.Address() + " never came up";
      supervisor.ShutdownAll();
      return r;
    }
  }

  // Least-loaded: feed the placer live per-node routed counts while the
  // run is in flight.
  std::atomic<bool> feed_stop{false};
  std::thread feeder;
  if (flags.placement == "least") {
    feeder = std::thread([&]() {
      while (!feed_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        std::map<NodeId, int64_t> counts =
            net::PlacementCounts(supervisor.CollectTelemetry(500));
        if (counts.empty()) continue;
        std::string feed = "feed";
        char sep = ' ';
        for (const auto& [id, n] : counts) {
          feed += sep;
          feed += "n" + std::to_string(id) + ":" + std::to_string(n);
          sep = ',';
        }
        (void)supervisor.Request(control, feed);
      }
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  Result<std::string> driven = supervisor.Request(
      control, "drive " + std::to_string(flags.workflows) + " " +
                   std::to_string(flags.rate));
  Status quiesced = driven.ok()
                        ? supervisor.WaitQuiescent(flags.timeout_ms)
                        : driven.status();
  auto wall = std::chrono::steady_clock::now() - t0;

  std::vector<net::NodeTelemetry> telemetry = supervisor.CollectTelemetry();
  feed_stop.store(true, std::memory_order_release);
  if (feeder.joinable()) feeder.join();
  supervisor.ShutdownAll();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  if (!quiesced.ok()) {
    r.error = quiesced.ToString();
    return r;
  }

  r.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(wall).count() /
      1000.0;
  r.wf_per_sec =
      r.wall_ms > 0 ? flags.workflows / (r.wall_ms / 1000.0) : 0;

  net::ClusterAggregate agg = net::AggregateTelemetry(telemetry);
  r.committed = agg.wf_committed;
  r.aborted = agg.wf_aborted;
  r.messages_total = agg.messages_total;
  r.messages_per_wf =
      flags.workflows > 0
          ? static_cast<double>(agg.messages_total) / flags.workflows
          : 0;
  obs::LatencyHistogram sojourn =
      net::PooledLatency(telemetry, "wf.sojourn_ticks");
  r.sojourn_samples = sojourn.count();
  double tick = static_cast<double>(flags.tick_us);
  r.p50_us = sojourn.Percentile(50) * tick;
  r.p95_us = sojourn.Percentile(95) * tick;
  r.p99_us = sojourn.Percentile(99) * tick;
  r.imbalance =
      net::ComputeImbalance(net::PlacementCounts(telemetry), r.agents);
  r.ok = r.committed + r.aborted == flags.workflows;
  if (!r.ok) {
    r.error = "terminal count mismatch: committed=" +
              std::to_string(r.committed) + " aborted=" +
              std::to_string(r.aborted) + " of " +
              std::to_string(flags.workflows);
  }
  return r;
}

int Main(int argc, char** argv) {
  SweepFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      flags.smoke = true;
    } else if (arg.rfind("--counts=", 0) == 0) {
      flags.counts = ParseCounts(arg.substr(9));
    } else if (arg.rfind("--workflows=", 0) == 0) {
      flags.workflows = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--rate=", 0) == 0) {
      flags.rate = std::atoll(arg.c_str() + 7);
    } else if (arg.rfind("--placement=", 0) == 0) {
      flags.placement = arg.substr(12);
    } else if (arg.rfind("--classes=", 0) == 0) {
      flags.classes = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--purge=", 0) == 0) {
      flags.purge = arg.substr(8);
    } else if (arg.rfind("--codec=", 0) == 0) {
      flags.codec = arg.substr(8);
    } else if (arg.rfind("--tick-us=", 0) == 0) {
      flags.tick_us = std::atoll(arg.c_str() + 10);
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      flags.timeout_ms = std::atoi(arg.c_str() + 13);
    } else if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(7);
    } else if (arg.rfind("--node-bin=", 0) == 0) {
      flags.node_bin = arg.substr(11);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (flags.smoke) {
    flags.counts = {8};
    flags.workflows = 120;
    flags.rate = 0;
  }
  if (flags.node_bin.empty()) {
    std::fprintf(stderr, "need --node-bin=<crew_node path>\n");
    return 2;
  }
  if (flags.counts.empty()) {
    std::fprintf(stderr, "need at least one process count\n");
    return 2;
  }

  std::printf(
      "cluster sweep: %d wf per config, rate=%lld/s, placement=%s, "
      "classes=%d, purge=%s, codec=%s\n",
      flags.workflows, static_cast<long long>(flags.rate),
      flags.placement.c_str(), flags.classes, flags.purge.c_str(),
      flags.codec.c_str());

  std::vector<ConfigResult> results;
  int failures = 0;
  for (int processes : flags.counts) {
    ConfigResult r = RunConfig(flags, processes);
    if (!r.ok) {
      ++failures;
      std::fprintf(stderr, "  %2d procs: FAIL (%s)\n", processes,
                   r.error.c_str());
    } else {
      std::printf(
          "  %2d procs (%2d agents): %6d wf in %8.1f ms => %8.0f wf/s  "
          "sojourn p50=%.0f p95=%.0f p99=%.0f us  msgs/wf=%.1f  "
          "imbalance=%.2f\n",
          r.processes, r.agents, r.workflows, r.wall_ms, r.wf_per_sec,
          r.p50_us, r.p95_us, r.p99_us, r.messages_per_wf,
          r.imbalance.max_over_mean);
    }
    results.push_back(std::move(r));
  }

  double speedup = 0;
  if (results.size() > 1 && results.front().ok && results.back().ok &&
      results.front().wf_per_sec > 0) {
    speedup = results.back().wf_per_sec / results.front().wf_per_sec;
  }

  std::ofstream out(flags.json_path, std::ios::binary | std::ios::trunc);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"cluster_sweep\",\"smoke\":%s,"
                "\"placement\":\"%s\",\"classes\":%d,\"purge\":\"%s\","
                "\"codec\":\"%s\",\"workflows\":%d,\"rate\":%lld,"
                "\"tick_us\":%lld,\"configs\":[",
                flags.smoke ? "true" : "false", flags.placement.c_str(),
                flags.classes, flags.purge.c_str(), flags.codec.c_str(),
                flags.workflows, static_cast<long long>(flags.rate),
                static_cast<long long>(flags.tick_us));
  out << buf;
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    if (i > 0) out << ",";
    std::snprintf(
        buf, sizeof(buf),
        "{\"processes\":%d,\"agents\":%d,\"ok\":%s,\"wall_ms\":%.3f,"
        "\"wf_per_sec\":%.1f,\"committed\":%lld,\"aborted\":%lld,"
        "\"messages_total\":%lld,\"messages_per_wf\":%.2f,"
        "\"sojourn_us\":{\"samples\":%lld,\"p50\":%.1f,\"p95\":%.1f,"
        "\"p99\":%.1f},"
        "\"imbalance\":{\"nodes\":%d,\"total\":%lld,\"max\":%lld,"
        "\"mean\":%.2f,\"max_over_mean\":%.2f}}",
        r.processes, r.agents, r.ok ? "true" : "false", r.wall_ms,
        r.wf_per_sec, static_cast<long long>(r.committed),
        static_cast<long long>(r.aborted),
        static_cast<long long>(r.messages_total), r.messages_per_wf,
        static_cast<long long>(r.sojourn_samples), r.p50_us, r.p95_us,
        r.p99_us, r.imbalance.nodes,
        static_cast<long long>(r.imbalance.total),
        static_cast<long long>(r.imbalance.max_count), r.imbalance.mean,
        r.imbalance.max_over_mean);
    out << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"speedup_smallest_to_largest\":%.2f}\n", speedup);
  out << buf;
  out.close();
  std::printf("wrote %s\n", flags.json_path.c_str());

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace crew

int main(int argc, char** argv) { return crew::Main(argc, argv); }
