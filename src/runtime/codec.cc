#include "runtime/codec.h"

#include <atomic>

#include "runtime/wire.h"

namespace crew::runtime {

namespace {
std::atomic<int> g_codec{static_cast<int>(PayloadCodec::kBinary)};
}  // namespace

void SetPayloadCodec(PayloadCodec codec) {
  g_codec.store(static_cast<int>(codec), std::memory_order_relaxed);
}

PayloadCodec ActivePayloadCodec() {
  return static_cast<PayloadCodec>(g_codec.load(std::memory_order_relaxed));
}

const char* PayloadCodecName(PayloadCodec codec) {
  return codec == PayloadCodec::kKv ? "kv" : "binary";
}

bool ParsePayloadCodecName(std::string_view name, PayloadCodec* out) {
  if (name == "kv") {
    *out = PayloadCodec::kKv;
    return true;
  }
  if (name == "binary" || name == "bin") {
    *out = PayloadCodec::kBinary;
    return true;
  }
  return false;
}

namespace {

struct WireTypeDict {
  rules::TokenTable table;
  size_t preloaded = 0;

  WireTypeDict() {
    // Intern order defines dictionary ids; append-only across releases
    // (the HELLO carries the sender's table, so a peer built from a
    // different order still resolves correctly — this order only has to
    // be stable within one process lifetime).
    for (const char* name : {
             wi::kWorkflowStart,
             wi::kWorkflowChangeInputs,
             wi::kWorkflowAbort,
             wi::kWorkflowStatus,
             wi::kWorkflowStatusReply,
             wi::kInputsChanged,
             wi::kStepExecute,
             wi::kStepCompensate,
             wi::kStepCompleted,
             wi::kStepStatus,
             wi::kStepStatusReply,
             wi::kWorkflowRollback,
             wi::kHaltThread,
             wi::kCompensateSet,
             wi::kCompensateThread,
             wi::kStateInformation,
             wi::kStateInformationReply,
             wi::kAddRule,
             wi::kAddEvent,
             wi::kAddPrecondition,
             wi::kRunProgram,
             wi::kRunProgramReply,
             wi::kPurgeInstances,
         }) {
      table.Intern(name);
    }
    preloaded = table.size();
  }
};

WireTypeDict& Dict() {
  static WireTypeDict* dict = new WireTypeDict();
  return *dict;
}

}  // namespace

rules::TokenTable& WireTypeTokens() { return Dict().table; }

size_t WireTypeCount() { return Dict().preloaded; }

int WireTypeId(std::string_view type) {
  const WireTypeDict& dict = Dict();
  rules::EventToken token = dict.table.Find(type);
  if (token == rules::kInvalidEventToken || token >= dict.preloaded) {
    return -1;
  }
  return static_cast<int>(token);
}

std::string_view WireTypeName(size_t id) {
  const WireTypeDict& dict = Dict();
  if (id >= dict.preloaded) return {};
  return dict.table.Name(static_cast<rules::EventToken>(id));
}

}  // namespace crew::runtime
