#ifndef CREW_NET_TRACE_MERGE_H_
#define CREW_NET_TRACE_MERGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/socket_transport.h"
#include "obs/trace.h"

namespace crew::net {

/// One process incarnation's trace output: every record its ring sink
/// captured, the node display names it registered, and the clock
/// samples its transport collected from peer HELLOs. The (endpoint,
/// incarnation) pair identifies one *clock* — a restarted process is a
/// new shard even at the same address, because its tick counter
/// restarts from its own process start.
struct TraceShard {
  std::string endpoint;
  uint64_t incarnation = 1;
  int64_t tick_us = 50;  ///< wall µs per tick in this shard's records
  std::vector<ClockSample> clocks;
  std::map<NodeId, std::string> node_names;
  std::vector<obs::TraceRecord> records;
};

/// Snapshots a ring sink (plus the owning transport's clock samples)
/// into a shard. Call after the runtime is shut down.
TraceShard ShardFromRing(const obs::RingBufferTracer& ring,
                         std::string endpoint, uint64_t incarnation,
                         int64_t tick_us, std::vector<ClockSample> clocks);

/// Shard file: one kv document (runtime/kv.h) with repeated keys —
/// meta (endpoint/incarnation/tick_us), "clock" and "node_name" lines,
/// then one "rec" line per record with '|'-separated fields
/// (percent-escaped strings). Plain text so a crashed merge never
/// corrupts anything downstream: each node writes its shard
/// independently and the merge step is a pure reader.
Status WriteTraceShard(const TraceShard& shard, const std::string& path);
Result<TraceShard> LoadTraceShard(const std::string& path);

/// What the merge did — exposed for tests and the tool's stderr line.
struct MergeStats {
  size_t shards = 0;
  size_t events = 0;        ///< trace events emitted (excl. metadata)
  size_t flow_begins = 0;   ///< kFlowBegin records across all shards
  size_t flow_ends = 0;
  size_t matched_flows = 0; ///< begin/end pairs joined by flow id
  std::string reference;    ///< "endpoint#inc" anchoring the timeline
  /// Estimated clock offset (µs, relative to the reference) applied to
  /// each shard, keyed "endpoint#inc".
  std::map<std::string, int64_t> offsets_us;
};

/// Merges shards onto one timeline and renders Chrome trace_event JSON
/// (Perfetto-loadable): one pid per shard, one tid per node, process
/// and thread name metadata, and cross-process kMessage spans rendered
/// as async "b"/"e" pairs joined by flow id.
///
/// Clock alignment: for each shard pair with HELLO samples in both
/// directions, the offset estimate is the NTP midpoint
/// (min_delta_fwd - min_delta_rev) / 2 of the minimum observed
/// one-way gaps; one-direction pairs fall back to that direction's
/// minimum gap (assumes zero latency); shards unreachable from the
/// reference by either kind of edge get offset 0. The reference shard
/// is the lexicographically smallest (endpoint, incarnation). All
/// timestamps are shifted so the merged timeline starts at 0.
std::string MergeTraceShards(const std::vector<TraceShard>& shards,
                             MergeStats* stats = nullptr);

Status WriteMergedTrace(const std::vector<TraceShard>& shards,
                        const std::string& path,
                        MergeStats* stats = nullptr);

/// JSONL counterpart: one line per merged record, timestamps aligned,
/// tagged with "endpoint" and "incarnation".
std::string MergedJsonl(const std::vector<TraceShard>& shards,
                        MergeStats* stats = nullptr);

}  // namespace crew::net

#endif  // CREW_NET_TRACE_MERGE_H_
