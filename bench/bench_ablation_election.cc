// Ablation: leader-election probe traffic. §4.2 proposes that the
// eligible successor agents exchange StateInformation() to pick the
// least-loaded executor; DESIGN.md notes our headline counts keep that
// traffic in its own category. This bench quantifies the probe overhead
// as `a` grows: probes cost a·(a-1) messages per multi-eligible step,
// while the modelled packet fan-out stays at s·a + f.
#include <cstdio>

#include "bench/bench_common.h"
#include "dist/system.h"
#include "model/builder.h"

using namespace crew;

namespace {

struct Cell {
  int64_t normal = 0;
  int64_t election = 0;
  int64_t committed = 0;
};

Cell RunOnce(int eligible, bool probes, obs::Tracer* tracer = nullptr) {
  sim::Simulator simulator(42);
  if (tracer != nullptr) simulator.set_tracer(tracer);
  runtime::ProgramRegistry programs;
  programs.RegisterBuiltins();
  model::Deployment deployment;
  runtime::CoordinationSpec coordination;
  dist::AgentOptions options;
  options.election_probes = probes;
  dist::DistributedSystem system(&simulator, &programs, &deployment,
                                 &coordination, /*num_agents=*/20,
                                 options);

  model::SchemaBuilder b("Wf");
  std::vector<StepId> steps;
  for (int i = 0; i < 10; ++i) {
    steps.push_back(b.AddTask("T" + std::to_string(i + 1), "noop"));
  }
  b.Sequence(steps);
  auto compiled = model::CompiledSchema::Compile(std::move(b.Build()).value());
  deployment.AssignRandom(*compiled.value(), system.agent_ids(), eligible,
                          &simulator.rng());
  system.RegisterSchema(compiled.value());

  for (int i = 0; i < 20; ++i) {
    (void)system.front_end().StartWorkflow("Wf", {});
  }
  simulator.Run();

  Cell cell;
  cell.normal =
      simulator.metrics().MessagesIn(sim::MsgCategory::kNormal);
  cell.election =
      simulator.metrics().MessagesIn(sim::MsgCategory::kElection);
  cell.committed = system.committed_count();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession session("ablation_election", argc, argv);
  printf(
      "\nAblation: distributed successor-election probe traffic\n"
      "(20 instances x 10 steps, 20 agents; probes metered separately)\n\n");
  printf("%3s | %14s | %16s | %16s | %9s\n", "a", "normal msgs",
         "probes (off)", "probes (on)", "committed");
  printf("%s\n", std::string(70, '-').c_str());
  for (int a : {1, 2, 3, 4}) {
    Cell off = RunOnce(a, /*probes=*/false);
    Cell on = RunOnce(a, /*probes=*/true, session.tracer());
    printf("%3d | %14lld | %16lld | %16lld | %6lld/20\n", a,
           static_cast<long long>(off.normal),
           static_cast<long long>(off.election),
           static_cast<long long>(on.election),
           static_cast<long long>(on.committed));
  }
  printf(
      "\nExpected shape: probe traffic grows ~a*(a-1) per multi-eligible\n"
      "step while the modelled packet fan-out grows only with a; the\n"
      "deterministic election keeps outcomes identical either way.\n");
  session.Finish();
  return 0;
}
