#ifndef CREW_CENTRAL_AGENT_H_
#define CREW_CENTRAL_AGENT_H_

#include "common/rng.h"
#include "runtime/programs.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace crew::central {

/// The thin application agent of centralized/parallel control (§2): it
/// executes step programs on request from an engine and reports results
/// back. It holds no navigation state. Every eligible agent receives the
/// step information; only the designated one runs the program, the others
/// acknowledge with their current load.
class ThinAgent : public sim::MessageHandler {
 public:
  ThinAgent(NodeId id, sim::Context* context,
            const runtime::ProgramRegistry* programs);

  ThinAgent(const ThinAgent&) = delete;
  ThinAgent& operator=(const ThinAgent&) = delete;

  NodeId id() const { return id_; }

  void HandleMessage(const sim::Message& message) override;

  /// Number of programs currently running here (the "load" replied to
  /// engines for least-loaded selection).
  int64_t active_programs() const { return active_programs_; }

 private:
  void HandleRunProgram(const sim::Message& message);

  NodeId id_;
  sim::Context* ctx_;
  const runtime::ProgramRegistry* programs_;
  Rng rng_;
  int64_t active_programs_ = 0;
};

}  // namespace crew::central

#endif  // CREW_CENTRAL_AGENT_H_
