#ifndef CREW_NET_SOCKET_TRANSPORT_H_
#define CREW_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/topology.h"
#include "obs/trace.h"
#include "rt/runtime.h"
#include "sim/network.h"

namespace crew::net {

struct SocketTransportOptions {
  /// Process generation: bump on restart so peers reset their dedup
  /// watermarks for this endpoint's streams.
  uint64_t incarnation = 1;
  /// Per-peer cap on retained outbound bytes (queued + unacked). Send
  /// blocks above it — the bounded-backpressure contract.
  size_t max_outbound_bytes = 64u << 20;
  /// Reconnect backoff, doubling from initial to max.
  int reconnect_initial_ms = 5;
  int reconnect_max_ms = 500;
  /// Consecutive connect failures before IsNodeDown reports the peer
  /// down (debounces startup races against real crashes).
  int down_after_failures = 40;
  /// Sender-side wire codec for every frame this transport encodes
  /// (HELLO/ACK/DATA). Receivers decode both forms unconditionally, so
  /// mixed-codec clusters interoperate.
  runtime::PayloadCodec codec = runtime::PayloadCodec::kBinary;
  /// Batching policy: pending DATA frames of a directed pair coalesce
  /// into one kBatch superframe per poll wakeup, capped at this many
  /// inner bytes per batch.
  size_t batch_max_bytes = 64 * 1024;
  /// Maximum time a pending DATA frame may wait for more frames to
  /// coalesce with. 0 (the default) flushes on the next poll wakeup —
  /// batching then only captures frames that were already concurrently
  /// pending, adding no latency. Positive values trade latency for
  /// bigger batches; the byte cap above still forces an early flush.
  int batch_max_delay_ms = 0;
};

/// Counters for benchmarks and Idle checks (monotonic, relaxed), plus
/// point-in-time gauges of the retained/held backlog (read under the
/// state lock, so a telemetry scrape sees a consistent snapshot).
struct SocketTransportStats {
  int64_t frames_sent = 0;        // DATA frames written (incl. replays)
  int64_t frames_delivered = 0;   // DATA frames handed to the sink
  int64_t frames_deduped = 0;     // DATA frames dropped by watermark
  int64_t frames_replayed = 0;    // DATA frames re-written after reconnect
  int64_t frames_batched = 0;     // DATA frames that rode in a superframe
  int64_t batches_sent = 0;       // kBatch superframes staged
  int64_t bytes_sent = 0;         // all frame bytes written
  int64_t write_syscalls = 0;     // successful write() calls
  int64_t reconnects = 0;         // connections established to peers
  int64_t retained_bytes = 0;     // gauge: unacked outbound, all peers
  int64_t held_bytes = 0;         // gauge: parked for explicit-down nodes
};

/// Health of one directed outbound link, for telemetry scrapes. The
/// retained window IS the ACK lag: frames this side has sequenced that
/// the peer's cumulative ACK has not yet covered.
struct SocketTransportPeerStats {
  std::string peer;           ///< remote endpoint address
  bool connected = false;
  uint64_t next_seq = 1;      ///< next sequence number to assign
  int64_t ack_lag_frames = 0; ///< retained (sequenced, unacked) frames
  int64_t retained_bytes = 0;
  int64_t held_bytes = 0;     ///< parked for explicitly-down nodes
};

/// One clock-offset observation against a peer: the send tick its HELLO
/// carried and our local tick when that HELLO was decoded. Only the
/// sample minimizing (local - remote) per (peer, incarnation) is kept —
/// the minimum-latency exchange is the best offset bound (NTP's logic)
/// — along with how many exchanges were seen. Keyed by the peer's
/// incarnation because a restarted process is a new clock: mixing
/// samples across its lives would corrupt the offset estimate.
struct ClockSample {
  std::string peer;               ///< remote endpoint address
  uint64_t peer_incarnation = 0;
  int64_t remote_sent_ticks = 0;  ///< peer clock, from its HELLO
  int64_t local_recv_ticks = 0;   ///< our clock at decode
  int64_t count = 0;              ///< HELLOs folded into this sample
};

/// sim::Transport over real sockets: each endpoint of the Topology is a
/// separate process (or a separate in-process instance, for loopback
/// tests), connected by Unix-domain or TCP stream sockets.
///
/// Structure: one listening socket plus one *outbound* connection to
/// every other endpoint, all driven by a single poll-loop thread.
/// Outbound connections are simplex — this endpoint's DATA frames and
/// its ACKs for the reverse direction; inbound frames arrive on
/// connections the peers initiated. Worker threads enqueue sends under a
/// per-peer mutex and wake the loop through a self-pipe.
///
/// Reliability: every DATA frame carries a per-directed-endpoint-pair
/// sequence number and is retained by the sender until the peer's
/// cumulative ACK covers it. A broken connection parks the backlog —
/// exactly the rt down_flag path, but sender-side — and reconnect (with
/// exponential backoff) replays HELLO, the reverse-direction ACK, then
/// every retained frame. The receiver drops seq <= watermark, keyed by
/// (endpoint, incarnation): a restarted peer announces a new incarnation
/// and the watermark resets. ACKs carry the incarnation they describe
/// and the sender ignores ACKs for an incarnation other than its own,
/// so a reconnect ACK that races a restarted peer's HELLO can never
/// discard frames of the new sequence space. This makes delivery
/// exactly-once in steady
/// state and at-least-once across a crash-restart — the residual
/// duplicates/losses are absorbed by the workflow layer's failure
/// handling (§5.2), which is the paper's point.
class SocketTransport : public sim::Transport, public rt::RemoteRouter {
 public:
  /// Sink for inbound messages, called on the poll-loop thread. Must not
  /// block (rt::Runtime::DeliverRemote force-pushes, so it qualifies).
  using DeliverFn = std::function<void(sim::Message)>;

  SocketTransport(Topology topology, Endpoint self, DeliverFn deliver,
                  SocketTransportOptions options = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Creates, binds and listens on the self endpoint. Separate from
  /// Start so a launcher can bind every endpoint before any connects,
  /// ruling out startup connect storms.
  Status Bind();

  /// Spawns the poll-loop thread; begins dialing peers.
  void Start();

  /// Blocks until an outbound connection to every peer endpoint is
  /// established, or the timeout passes. Returns success.
  bool WaitConnected(std::chrono::milliseconds timeout);

  /// Closes every socket and joins the loop thread. Idempotent.
  void Shutdown();

  /// Installs the telemetry hooks: a trace sink (the runtime's
  /// serializing tracer) and the clock it stamps with (runtime ticks).
  /// With an enabled tracer installed, Ship() assigns each message an
  /// incarnation-scoped trace id, records the sender half of its
  /// kMessage flow span, and HELLO frames carry the local send tick so
  /// peers can collect clock samples. Call before Start().
  void InstallTelemetry(obs::Tracer* tracer,
                        std::function<int64_t()> clock);

  /// Best clock-offset sample per (peer, incarnation) seen so far.
  std::vector<ClockSample> ClockSamples() const;

  /// Per-directed-link health gauges, one entry per remote endpoint.
  std::vector<SocketTransportPeerStats> PeerStats() const;

  // ---- sim::Transport ----
  /// Registers a local handler (transport-level tests). Messages to a
  /// registered id are dispatched inline; inbound frames for it are
  /// dispatched on the loop thread. With a DeliverFn sink installed the
  /// sink takes precedence for inbound frames.
  void Register(NodeId id, sim::MessageHandler* handler) override;
  void SetNodeDown(NodeId id, bool down) override;
  bool IsNodeDown(NodeId id) const override;
  Status Send(sim::Message message) override;

  // ---- rt::RemoteRouter (the hook rt::Runtime calls for non-local ids)
  Status RouteRemote(sim::Message message) override { return Ship(message); }
  void SetRemoteDown(NodeId id, bool down) override {
    SetNodeDown(id, down);
  }
  bool IsRemoteDown(NodeId id) const override { return IsNodeDown(id); }

  /// True when nothing is in flight from this side: no held, queued or
  /// unacked outbound frame anywhere. All transports idle (across the
  /// cluster) + all runtimes quiet => global quiescence.
  bool Idle() const;

  SocketTransportStats Stats() const;
  const Endpoint& self() const { return self_; }
  const Topology& topology() const { return topology_; }

 private:
  struct Peer;
  struct InConn;

  Status Ship(sim::Message& message);
  Peer* PeerOf(NodeId id) const;
  void WakeLoop();
  void LoopThread();
  /// Starts (or restarts) the non-blocking connect to `peer`.
  void DialLocked(Peer* peer, int64_t now_ms);
  /// Runs getaddrinfo for dial-due TCP hostnames OUTSIDE state_mu_
  /// (loop thread only): DNS can block for seconds and must not stall
  /// workers in Ship/IsNodeDown/WaitConnected.
  void ResolveDueHostnames(int64_t now_ms);
  void OnConnected(Peer* peer);
  void OnConnectionBroken(Peer* peer, int64_t now_ms);
  /// True when the peer's pending DATA frames should be staged now
  /// rather than waiting for more to coalesce (batch_max_delay_ms
  /// expired, byte cap reached, or no delay policy configured).
  bool FlushDueLocked(const Peer* peer, int64_t now_ms) const;
  void FlushWrites(Peer* peer, bool flush_due);
  void ReadInbound(InConn* conn);
  void HandleInboundFrame(InConn* conn, Frame frame);
  /// Appends an ACK for `endpoint`'s stream onto our link to it,
  /// scoped to the stream incarnation the watermark belongs to.
  void QueueAckLocked(const std::string& endpoint_address,
                      uint64_t watermark, uint64_t incarnation);
  int64_t NowMs() const;

  Topology topology_;
  Endpoint self_;
  DeliverFn deliver_;
  SocketTransportOptions options_;

  /// Telemetry hooks (InstallTelemetry; immutable once Start() ran).
  obs::Tracer* tracer_ = nullptr;
  std::function<int64_t()> clock_;
  /// High 16 bits of every trace id this transport assigns: a hash of
  /// the self address, so ids from different endpoints cannot collide.
  uint64_t trace_endpoint_bits_ = 0;
  std::atomic<uint32_t> trace_counter_{0};

  /// Best (min local-remote gap) clock sample per (peer, incarnation).
  std::map<std::pair<std::string, uint64_t>, ClockSample>
      clock_samples_;  // guarded by state_mu_

  std::map<NodeId, sim::MessageHandler*> handlers_;  // pre-Start only
  std::set<NodeId> local_nodes_;
  std::set<NodeId> explicit_down_;  // guarded by state_mu_

  /// Outbound state per remote endpoint, keyed by address.
  std::map<std::string, std::unique_ptr<Peer>> peers_;
  /// Node -> owning peer (nullptr for local nodes).
  std::map<NodeId, Peer*> peer_of_node_;

  /// Receive watermarks keyed by peer endpoint address.
  struct InStream {
    uint64_t incarnation = 0;
    uint64_t watermark = 0;
  };
  std::map<std::string, InStream> inbound_;  // loop thread only

  std::vector<std::unique_ptr<InConn>> accepted_;  // loop thread only

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  /// Wake elision: set before writing the self-pipe, cleared by the loop
  /// right after draining it. Back-to-back Ship() calls between two loop
  /// wakeups then cost one pipe write total instead of one each.
  std::atomic<bool> wake_pending_{false};
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> shut_down_{false};

  mutable std::mutex state_mu_;  // guards peers_' mutable state
  std::condition_variable state_cv_;

  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> frames_delivered_{0};
  std::atomic<int64_t> frames_deduped_{0};
  std::atomic<int64_t> frames_replayed_{0};
  std::atomic<int64_t> frames_batched_{0};
  std::atomic<int64_t> batches_sent_{0};
  std::atomic<int64_t> bytes_sent_{0};
  std::atomic<int64_t> write_syscalls_{0};
  std::atomic<int64_t> reconnects_{0};
};

}  // namespace crew::net

#endif  // CREW_NET_SOCKET_TRANSPORT_H_
