#include <gtest/gtest.h>

#include "model/builder.h"
#include "parallel/system.h"

namespace crew::parallel {
namespace {

using model::SchemaBuilder;
using runtime::WorkflowState;

class ParallelFixture {
 public:
  explicit ParallelFixture(int engines = 4, int agents = 8,
                           uint64_t seed = 42)
      : simulator_(seed) {
    programs_.RegisterBuiltins();
    system_ = std::make_unique<ParallelSystem>(
        &simulator_, &programs_, &deployment_, &coordination_, engines,
        agents);
  }

  void Register(model::Schema schema, int eligible = 2) {
    auto compiled = model::CompiledSchema::Compile(std::move(schema));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    const auto& ids = system_->agent_ids();
    for (StepId s = 1; s <= compiled.value()->schema().num_steps(); ++s) {
      std::vector<NodeId> agents;
      for (int k = 0; k < eligible; ++k) {
        agents.push_back(ids[(s - 1 + k) % ids.size()]);
      }
      std::sort(agents.begin(), agents.end());
      deployment_.SetEligible(compiled.value()->schema().name(), s,
                              agents);
    }
    system_->RegisterSchema(compiled.value());
  }

  void Run() { simulator_.Run(); }

  sim::Simulator simulator_;
  runtime::ProgramRegistry programs_;
  model::Deployment deployment_;
  runtime::CoordinationSpec coordination_;
  std::unique_ptr<ParallelSystem> system_;
};

model::Schema Seq(const std::string& name, int steps) {
  SchemaBuilder b(name);
  std::vector<StepId> ids;
  for (int i = 0; i < steps; ++i) {
    ids.push_back(b.AddTask("T" + std::to_string(i + 1), "noop"));
  }
  b.Sequence(ids);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

TEST(ParallelSystemTest, InstancesPartitionAcrossEngines) {
  ParallelFixture fix(/*engines=*/4);
  fix.Register(Seq("Wf", 5));
  for (int64_t i = 1; i <= 12; ++i) {
    ASSERT_TRUE(fix.system_->StartWorkflow("Wf", i, {}).ok());
  }
  fix.Run();
  EXPECT_EQ(fix.system_->committed_count(), 12);
  // Every engine saw some instances (12 round-robin over 4).
  for (int e = 0; e < 4; ++e) {
    EXPECT_EQ(fix.system_->engine(e).committed_count(), 3) << e;
  }
}

TEST(ParallelSystemTest, StatusRoutingFindsOwner) {
  ParallelFixture fix;
  fix.Register(Seq("Wf", 3));
  ASSERT_TRUE(fix.system_->StartWorkflow("Wf", 7, {}).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->QueryStatus({"Wf", 7}),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->QueryStatus({"Wf", 999}),
            WorkflowState::kUnknown);
}

TEST(ParallelSystemTest, EngineLoadIsShared) {
  ParallelFixture fix(/*engines=*/4, /*agents=*/8);
  fix.Register(Seq("Wf", 6));
  for (int64_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE(fix.system_->StartWorkflow("Wf", i, {}).ok());
  }
  fix.Run();
  // Navigation load must be spread over the 4 engine nodes.
  int64_t max_engine = 0;
  int64_t total = 0;
  for (NodeId e = 1; e <= 4; ++e) {
    int64_t load = fix.simulator_.metrics().LoadAt(
        e, sim::LoadCategory::kNavigation);
    EXPECT_GT(load, 0) << "engine " << e;
    max_engine = std::max(max_engine, load);
    total += load;
  }
  EXPECT_LT(max_engine, total);  // nobody carries everything
}

TEST(ParallelSystemTest, RelativeOrderingAcrossEngines) {
  ParallelFixture fix(/*engines=*/3);
  runtime::RelativeOrderReq ro;
  ro.id = "orders";
  ro.workflow_a = "Wf";
  ro.workflow_b = "Wf";
  ro.step_pairs = {{2, 2}};
  fix.coordination_.relative_orders.push_back(ro);
  fix.Register(Seq("Wf", 4));
  // Consecutive instances land on different engines (round-robin), so the
  // RO notification must cross engines.
  for (int64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(fix.system_->StartWorkflow("Wf", i, {}).ok());
  }
  fix.Run();
  EXPECT_EQ(fix.system_->committed_count(), 6);
  // Cross-engine coordination generated messages.
  EXPECT_GT(fix.simulator_.metrics().MessagesIn(
                sim::MsgCategory::kCoordination),
            0);
}

TEST(ParallelSystemTest, MutualExclusionArbitratedAcrossEngines) {
  ParallelFixture fix(/*engines=*/3);
  runtime::MutexReq me;
  me.id = "m";
  me.resource = "machine";
  me.critical_steps = {{"Wf", 2}};
  fix.coordination_.mutexes.push_back(me);
  fix.Register(Seq("Wf", 3));
  for (int64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(fix.system_->StartWorkflow("Wf", i, {}).ok());
  }
  fix.Run();
  EXPECT_EQ(fix.system_->committed_count(), 6);
}

TEST(ParallelSystemTest, FailureHandlingIndependentPerEngine) {
  ParallelFixture fix(/*engines=*/2);
  fix.programs_.RegisterFailFirstN("flaky", 1);
  SchemaBuilder b("Retry");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "flaky");
  b.Sequence({s1, s2});
  b.OnFail(s2, s1, 3);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());
  for (int64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(fix.system_->StartWorkflow("Retry", i, {}).ok());
  }
  fix.Run();
  EXPECT_EQ(fix.system_->committed_count(), 4);
}

TEST(ParallelSystemTest, CoordinationBroadcastMatchesModel) {
  // The paper models parallel coordination traffic as growing with e;
  // verify broadcasts go to all peer engines.
  ParallelFixture small(/*engines=*/2);
  ParallelFixture large(/*engines=*/6);
  runtime::RelativeOrderReq ro;
  ro.id = "o";
  ro.workflow_a = "Wf";
  ro.workflow_b = "Wf";
  ro.step_pairs = {{1, 1}};
  for (ParallelFixture* fix : {&small, &large}) {
    fix->coordination_.relative_orders.push_back(ro);
    fix->Register(Seq("Wf", 3));
    for (int64_t i = 1; i <= 6; ++i) {
      ASSERT_TRUE(fix->system_->StartWorkflow("Wf", i, {}).ok());
    }
    fix->Run();
    EXPECT_EQ(fix->system_->committed_count(), 6);
  }
  EXPECT_GT(large.simulator_.metrics().MessagesIn(
                sim::MsgCategory::kCoordination),
            small.simulator_.metrics().MessagesIn(
                sim::MsgCategory::kCoordination));
}

TEST(ParallelSystemTest, RepeatedRollbacksWithMutexesNeverWedge) {
  // Regression: a stale compensation reply (dropped by the epoch check
  // after a second rollback) used to stall the serialized compensation
  // queue forever while holding a mutual-exclusion lock. Rollback
  // dependencies make every WF-B instance roll back whenever a WF-A
  // instance fails, driving repeated epochs under lock contention.
  ParallelFixture fix(/*engines=*/3, /*agents=*/9);
  fix.programs_.RegisterFailFirstN("flaky", 2);
  runtime::MutexReq me;
  me.id = "m";
  me.resource = "shared";
  me.critical_steps = {{"B", 1}};
  fix.coordination_.mutexes.push_back(me);
  runtime::RollbackDepReq rd;
  rd.id = "rd";
  rd.workflow_a = "A";
  rd.step_a = 3;
  rd.workflow_b = "B";
  rd.step_b = 1;
  fix.coordination_.rollback_deps.push_back(rd);

  {
    SchemaBuilder b("A");
    StepId s1 = b.AddTask("a1", "noop");
    StepId s2 = b.AddTask("a2", "flaky");
    StepId s3 = b.AddTask("a3", "noop");
    b.Sequence({s1, s2, s3});
    b.OnFail(s2, s1, 5);
    fix.Register(std::move(b.Build()).value());
  }
  {
    SchemaBuilder b("B");
    StepId s1 = b.AddTask("b1", "noop");
    StepId s2 = b.AddTask("b2", "noop");
    StepId s3 = b.AddTask("b3", "noop");
    b.Sequence({s1, s2, s3});
    fix.Register(std::move(b.Build()).value());
  }
  for (int64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(fix.system_->StartWorkflow("B", i, {}).ok());
    ASSERT_TRUE(fix.system_->StartWorkflow("A", i, {}).ok());
  }
  fix.Run();
  EXPECT_EQ(fix.system_->committed_count(), 12);
}

}  // namespace
}  // namespace crew::parallel
