#include "sim/simulator.h"

#include "common/logging.h"

namespace crew::sim {

Simulator::Simulator(uint64_t seed)
    : rng_(seed), network_(&queue_, &metrics_), tracer_(obs::Tracer::Null()) {
  tracer_->SetClock(queue_.now_ptr());
  // Log lines carry this run's virtual time while the simulator lives.
  Logger::SetVirtualClock(queue_.now_ptr());
}

Simulator::~Simulator() { Logger::ClearVirtualClock(queue_.now_ptr()); }

void Simulator::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer != nullptr ? tracer : obs::Tracer::Null();
  tracer_->SetClock(queue_.now_ptr());
  network_.set_tracer(tracer_);
}

void InjectCrash(Simulator* simulator, NodeId node, Time at, Time outage) {
  simulator->queue().ScheduleAt(at, [simulator, node]() {
    simulator->network().SetNodeDown(node, true);
  });
  simulator->queue().ScheduleAt(at + outage, [simulator, node]() {
    simulator->network().SetNodeDown(node, false);
  });
}

}  // namespace crew::sim
