#include "rules/engine.h"

#include <algorithm>

namespace crew::rules {

Status RuleEngine::AddRule(Rule rule) {
  if (rule.id.empty()) {
    return Status::InvalidArgument("rule id must not be empty");
  }
  if (rule.events.empty()) {
    return Status::InvalidArgument("rule " + rule.id +
                                   " has no trigger events");
  }
  auto [it, inserted] = rules_.try_emplace(rule.id);
  if (!inserted) {
    return Status::AlreadyExists("rule " + rule.id + " already present");
  }
  it->second.rule = std::move(rule);
  return Status::OK();
}

bool RuleEngine::RemoveRule(const std::string& rule_id) {
  return rules_.erase(rule_id) > 0;
}

Status RuleEngine::AddPrecondition(const std::string& rule_id,
                                   const std::string& extra_event) {
  auto it = rules_.find(rule_id);
  if (it == rules_.end()) {
    return Status::NotFound("no rule " + rule_id);
  }
  std::vector<std::string>& events = it->second.rule.events;
  if (std::find(events.begin(), events.end(), extra_event) == events.end()) {
    events.push_back(extra_event);
  }
  return Status::OK();
}

void RuleEngine::Post(const std::string& event_token) {
  EventState& state = events_[event_token];
  state.valid = true;
  state.stamp = next_stamp_++;
}

void RuleEngine::Invalidate(const std::string& event_token) {
  auto it = events_.find(event_token);
  if (it != events_.end()) it->second.valid = false;
}

bool RuleEngine::Occurred(const std::string& event_token) const {
  auto it = events_.find(event_token);
  return it != events_.end() && it->second.valid;
}

bool RuleEngine::Fireable(const RuleState& state,
                          const expr::Environment& env,
                          uint64_t* newest_stamp) const {
  uint64_t newest = 0;
  for (const std::string& token : state.rule.events) {
    auto it = events_.find(token);
    if (it == events_.end() || !it->second.valid) return false;
    newest = std::max(newest, it->second.stamp);
  }
  if (newest <= state.last_fired_stamp) return false;  // nothing new
  if (!expr::EvaluateCondition(state.rule.condition, env)) return false;
  *newest_stamp = newest;
  return true;
}

std::vector<RuleAction> RuleEngine::CollectFireable(
    const expr::Environment& env) {
  std::vector<RuleAction> fired;
  // Map iteration is id-ordered, giving deterministic firing order.
  for (auto& [id, state] : rules_) {
    uint64_t newest = 0;
    if (Fireable(state, env, &newest)) {
      state.last_fired_stamp = newest;
      fired.push_back(state.rule.action);
      ++fire_count_;
    }
  }
  return fired;
}

std::vector<std::pair<std::string, std::vector<std::string>>>
RuleEngine::PendingRules() const {
  std::vector<std::pair<std::string, std::vector<std::string>>> out;
  for (const auto& [id, state] : rules_) {
    std::vector<std::string> missing = MissingEvents(id);
    if (!missing.empty()) out.emplace_back(id, std::move(missing));
  }
  return out;
}

std::vector<std::string> RuleEngine::MissingEvents(
    const std::string& rule_id) const {
  std::vector<std::string> missing;
  auto it = rules_.find(rule_id);
  if (it == rules_.end()) return missing;
  for (const std::string& token : it->second.rule.events) {
    auto jt = events_.find(token);
    if (jt == events_.end() || !jt->second.valid) missing.push_back(token);
  }
  return missing;
}

void RuleEngine::ResetFiringIf(
    const std::function<bool(const Rule&)>& pred) {
  for (auto& [id, state] : rules_) {
    if (pred(state.rule)) state.last_fired_stamp = 0;
  }
}

const Rule* RuleEngine::FindRule(const std::string& rule_id) const {
  auto it = rules_.find(rule_id);
  return it == rules_.end() ? nullptr : &it->second.rule;
}

}  // namespace crew::rules
