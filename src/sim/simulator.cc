#include "sim/simulator.h"

namespace crew::sim {

void InjectCrash(Simulator* simulator, NodeId node, Time at, Time outage) {
  simulator->queue().ScheduleAt(at, [simulator, node]() {
    simulator->network().SetNodeDown(node, true);
  });
  simulator->queue().ScheduleAt(at + outage, [simulator, node]() {
    simulator->network().SetNodeDown(node, false);
  });
}

}  // namespace crew::sim
