// Socket-backend load bench: a closed-loop WorkflowStart blast against a
// multi-endpoint loopback deployment (src/net) — the same Testbed
// fragments crew_node hosts, but in-process NetNodes over real
// Unix-domain sockets, so the number isolates transport cost from
// process management. Reports saturation throughput (wf/s) and
// per-instance sojourn percentiles (instance span: navigation start ->
// commit, in virtual ticks scaled to µs), plus the transport's frame
// counters. Machine-readable output in BENCH_net.json.
//
// Flags:
//   --smoke          tiny workload (<2s) for CI
//   --mode=M         central | parallel | dist (default dist)
//   --workflows=N    instances (default 2000)
//   --agents=N       agent count (default 3)
//   --engines=N      parallel-control engine count (default 2)
//   --endpoints=N    socket endpoints to spread nodes over (default 3)
//   --json=PATH      output path (default BENCH_net.json)
//   --trace=PATH     merged cluster Chrome trace (all endpoints on one
//                    clock-aligned timeline, cross-process msg spans)
//   --jsonl=PATH     merged aligned JSONL event log
//   --codec=C        kv | binary wire codec (default binary)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/node.h"
#include "net/testbed.h"
#include "net/topology.h"
#include "net/trace_merge.h"
#include "obs/trace.h"
#include "rt/runtime.h"
#include "runtime/codec.h"

namespace crew {
namespace {

constexpr uint64_t kSeed = 42;
constexpr int64_t kTickUs = 10;

double Ticks2Us(double ticks) { return ticks * static_cast<double>(kTickUs); }

struct BenchFlags {
  std::string mode = "dist";
  int workflows = 2000;
  int agents = 3;
  int engines = 2;
  int endpoints = 3;
  std::string json_path = "BENCH_net.json";
  std::string trace_path;
  std::string jsonl_path;
  bool smoke = false;
  runtime::PayloadCodec codec = runtime::PayloadCodec::kBinary;
};

struct BenchResult {
  int workflows = 0;
  int64_t committed = 0;
  double wall_ms = 0;
  double wf_per_sec = 0;
  int64_t sojourn_samples = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
  net::SocketTransportStats transport;  // summed over endpoints
};

/// Cluster-wide quiescence, same double-sweep as net::Cluster::Quiesce
/// (re-implemented here because each node needs its own tracer, which
/// Cluster's shared RuntimeOptions cannot express).
void Quiesce(const std::vector<std::unique_ptr<net::NetNode>>& nodes) {
  int64_t last_admitted = -1;
  for (;;) {
    bool quiet = true;
    int64_t admitted = 0;
    for (const auto& node : nodes) {
      if (!node->LooksQuiet()) quiet = false;
      admitted += node->AdmittedWork();
    }
    if (quiet && admitted == last_admitted) return;
    last_admitted = quiet ? admitted : -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

BenchResult RunOnce(const BenchFlags& flags) {
  char dir_template[] = "/tmp/crew_bench_net_XXXXXX";
  char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }

  net::TestbedOptions options;
  options.mode = flags.mode;
  options.num_engines = flags.engines;
  options.num_agents = flags.agents;
  // Generous overdue-step window: a blast can hold a healthy step in
  // queue past the equivalence default, and this bench measures
  // throughput, not probe traffic.
  options.pending_timeout = 50000;

  Result<net::Topology> topology =
      net::Testbed::UnixTopology(options, dir, flags.endpoints);
  if (!topology.ok()) {
    std::fprintf(stderr, "topology: %s\n",
                 topology.status().ToString().c_str());
    std::exit(1);
  }

  std::vector<net::Endpoint> endpoints = topology.value().Endpoints();
  std::vector<std::unique_ptr<obs::RingBufferTracer>> rings;
  std::vector<std::unique_ptr<net::NetNode>> nodes;
  std::vector<std::unique_ptr<net::Testbed>> testbeds;
  for (const net::Endpoint& endpoint : endpoints) {
    rings.push_back(std::make_unique<obs::RingBufferTracer>());
    rt::RuntimeOptions runtime_options;
    runtime_options.seed = kSeed;
    runtime_options.tick_us = kTickUs;
    runtime_options.tracer = rings.back().get();
    net::SocketTransportOptions transport_options;
    transport_options.codec = flags.codec;
    nodes.push_back(std::make_unique<net::NetNode>(
        topology.value(), endpoint, runtime_options, transport_options));
    Status bound = nodes.back()->Bind();
    if (!bound.ok()) {
      std::fprintf(stderr, "bind: %s\n", bound.ToString().c_str());
      std::exit(1);
    }
  }
  for (auto& node : nodes) {
    testbeds.push_back(std::make_unique<net::Testbed>(
        &node->runtime(), topology.value(), node->self(), options));
  }
  for (auto& node : nodes) node->Start();
  for (auto& node : nodes) {
    if (!node->WaitConnected(std::chrono::seconds(30))) {
      std::fprintf(stderr, "endpoint %s failed to connect\n",
                   node->self().Address().c_str());
      std::exit(1);
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i <= flags.workflows; ++i) {
    NodeId start_node = testbeds[0]->StartNode("Good", i);
    for (size_t k = 0; k < testbeds.size(); ++k) {
      if (!testbeds[k]->Hosts(start_node)) continue;
      net::Testbed* testbed = testbeds[k].get();
      nodes[k]->runtime().Post(start_node, [testbed, i]() {
        (void)testbed->StartInstance("Good", i);
      });
      break;
    }
  }
  Quiesce(nodes);
  auto wall = std::chrono::steady_clock::now() - t0;

  BenchResult result;
  result.workflows = flags.workflows;
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(wall).count() /
      1000.0;
  result.wf_per_sec =
      result.wall_ms > 0 ? flags.workflows / (result.wall_ms / 1000.0) : 0;
  for (auto& testbed : testbeds) {
    result.committed += testbed->committed_count();
  }
  // Per-instance sojourn: every runtime's instance spans, pooled. Each
  // span's begin and end land on the instance's authority node, so the
  // duration is consistent even though the runtimes tick independently.
  obs::LatencyHistogram sojourn("sojourn", "ticks");
  for (auto& ring : rings) {
    for (const obs::TraceRecord& record : ring->records()) {
      if (record.kind != obs::SpanKind::kInstance ||
          record.phase != obs::TracePhase::kComplete ||
          record.name != "instance") {
        continue;
      }
      sojourn.Add(record.dur);
    }
  }
  result.sojourn_samples = sojourn.count();
  result.p50_us = Ticks2Us(sojourn.Percentile(50));
  result.p95_us = Ticks2Us(sojourn.Percentile(95));
  result.p99_us = Ticks2Us(sojourn.Percentile(99));
  result.max_us = Ticks2Us(static_cast<double>(sojourn.max()));
  for (auto& node : nodes) {
    net::SocketTransportStats stats = node->transport().Stats();
    result.transport.frames_sent += stats.frames_sent;
    result.transport.frames_delivered += stats.frames_delivered;
    result.transport.frames_deduped += stats.frames_deduped;
    result.transport.frames_replayed += stats.frames_replayed;
    result.transport.frames_batched += stats.frames_batched;
    result.transport.batches_sent += stats.batches_sent;
    result.transport.bytes_sent += stats.bytes_sent;
    result.transport.write_syscalls += stats.write_syscalls;
    result.transport.reconnects += stats.reconnects;
  }
  for (auto& node : nodes) node->Shutdown();

  // Merged cluster trace: each endpoint's ring becomes one in-memory
  // shard (same form crew_node writes to disk), clock-aligned by the
  // transports' HELLO samples — the whole blast on one timeline.
  if (!flags.trace_path.empty() || !flags.jsonl_path.empty()) {
    std::vector<net::TraceShard> shards;
    for (size_t k = 0; k < nodes.size(); ++k) {
      shards.push_back(net::ShardFromRing(
          *rings[k], nodes[k]->self().Address(), /*incarnation=*/1,
          kTickUs, nodes[k]->transport().ClockSamples()));
    }
    if (!flags.trace_path.empty()) {
      net::MergeStats stats;
      Status written =
          net::WriteMergedTrace(shards, flags.trace_path, &stats);
      if (!written.ok()) {
        std::fprintf(stderr, "trace: %s\n", written.ToString().c_str());
      } else {
        std::printf("merged trace: %zu shards, %zu events, %zu "
                    "cross-process spans -> %s\n",
                    stats.shards, stats.events, stats.matched_flows,
                    flags.trace_path.c_str());
      }
    }
    if (!flags.jsonl_path.empty()) {
      std::ofstream out(flags.jsonl_path,
                        std::ios::binary | std::ios::trunc);
      out << net::MergedJsonl(shards);
      std::printf("merged jsonl -> %s\n", flags.jsonl_path.c_str());
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return result;
}

int Main(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      flags.smoke = true;
    } else if (arg.rfind("--mode=", 0) == 0) {
      flags.mode = arg.substr(7);
    } else if (arg.rfind("--workflows=", 0) == 0) {
      flags.workflows = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--agents=", 0) == 0) {
      flags.agents = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--engines=", 0) == 0) {
      flags.engines = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--endpoints=", 0) == 0) {
      flags.endpoints = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(7);
    } else if (arg.rfind("--trace=", 0) == 0) {
      flags.trace_path = arg.substr(8);
    } else if (arg.rfind("--jsonl=", 0) == 0) {
      flags.jsonl_path = arg.substr(8);
    } else if (arg.rfind("--codec=", 0) == 0) {
      if (!runtime::ParsePayloadCodecName(arg.substr(8), &flags.codec)) {
        std::fprintf(stderr, "unknown codec: %s\n", arg.c_str() + 8);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (flags.smoke) flags.workflows = 200;
  runtime::SetPayloadCodec(flags.codec);  // payloads match the frame codec

  std::printf(
      "net load: %s, %d wf over %d endpoints, %d agents, tick=%lldus, "
      "codec=%s\n",
      flags.mode.c_str(), flags.workflows, flags.endpoints, flags.agents,
      static_cast<long long>(kTickUs),
      runtime::PayloadCodecName(flags.codec));

  BenchResult r = RunOnce(flags);
  std::printf(
      "%-8s %6d wf in %8.1f ms  => %9.0f wf/s   "
      "sojourn p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus\n",
      flags.mode.c_str(), r.workflows, r.wall_ms, r.wf_per_sec, r.p50_us,
      r.p95_us, r.p99_us, r.max_us);
  std::printf(
      "         frames sent=%lld delivered=%lld deduped=%lld "
      "bytes=%lld batched=%lld/%lld syscalls=%lld reconnects=%lld\n",
      static_cast<long long>(r.transport.frames_sent),
      static_cast<long long>(r.transport.frames_delivered),
      static_cast<long long>(r.transport.frames_deduped),
      static_cast<long long>(r.transport.bytes_sent),
      static_cast<long long>(r.transport.frames_batched),
      static_cast<long long>(r.transport.batches_sent),
      static_cast<long long>(r.transport.write_syscalls),
      static_cast<long long>(r.transport.reconnects));

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"net_throughput\",\"smoke\":%s,\"tick_us\":%lld,"
      "\"codec\":\"%s\",\"mode\":\"%s\",\"endpoints\":%d,\"agents\":%d,"
      "\"workflows\":%d,\"committed\":%lld,\"wall_ms\":%.3f,"
      "\"wf_per_sec\":%.1f,"
      "\"sojourn_us\":{\"samples\":%lld,\"p50\":%.1f,\"p95\":%.1f,"
      "\"p99\":%.1f,\"max\":%.1f},"
      "\"transport\":{\"frames_sent\":%lld,\"frames_delivered\":%lld,"
      "\"frames_deduped\":%lld,\"frames_replayed\":%lld,"
      "\"frames_batched\":%lld,\"batches_sent\":%lld,"
      "\"bytes_sent\":%lld,\"write_syscalls\":%lld,"
      "\"reconnects\":%lld}}\n",
      flags.smoke ? "true" : "false", static_cast<long long>(kTickUs),
      runtime::PayloadCodecName(flags.codec), flags.mode.c_str(),
      flags.endpoints, flags.agents, r.workflows,
      static_cast<long long>(r.committed), r.wall_ms, r.wf_per_sec,
      static_cast<long long>(r.sojourn_samples), r.p50_us, r.p95_us,
      r.p99_us, r.max_us, static_cast<long long>(r.transport.frames_sent),
      static_cast<long long>(r.transport.frames_delivered),
      static_cast<long long>(r.transport.frames_deduped),
      static_cast<long long>(r.transport.frames_replayed),
      static_cast<long long>(r.transport.frames_batched),
      static_cast<long long>(r.transport.batches_sent),
      static_cast<long long>(r.transport.bytes_sent),
      static_cast<long long>(r.transport.write_syscalls),
      static_cast<long long>(r.transport.reconnects));
  std::ofstream out(flags.json_path);
  out << buf;

  if (r.committed != r.workflows) {
    std::fprintf(stderr, "FAIL: committed %lld of %d workflows\n",
                 static_cast<long long>(r.committed), r.workflows);
    return 1;
  }
  if (r.sojourn_samples != r.workflows) {
    std::fprintf(stderr, "FAIL: %lld sojourn samples for %d workflows\n",
                 static_cast<long long>(r.sojourn_samples), r.workflows);
    return 1;
  }
  std::printf("wrote %s\n", flags.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace crew

int main(int argc, char** argv) { return crew::Main(argc, argv); }
