#ifndef CREW_EXPR_AST_H_
#define CREW_EXPR_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace crew::expr {

enum class NodeKind {
  kLiteral,
  kVariable,   // data item reference, resolved against an Environment
  kUnary,      // not, negate
  kBinary,     // arithmetic / comparison / logical
  kCall,       // builtin function: exists(x), changed(x), abs(x), min, max
};

enum class UnaryOp { kNot, kNegate };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

/// Returns the operator's source spelling ("+", "==", "and", ...).
const char* BinaryOpName(BinaryOp op);

/// An immutable expression tree node. Trees are shared via shared_ptr so
/// compiled schemas can hand the same condition to many rule instances.
struct Node {
  NodeKind kind;
  // kLiteral
  Value literal;
  // kVariable / kCall
  std::string name;
  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kAdd;
  std::vector<std::shared_ptr<const Node>> children;

  /// Renders the subtree back to (parenthesized) source form.
  std::string ToString() const;
};

using NodePtr = std::shared_ptr<const Node>;

NodePtr MakeLiteral(Value v);
NodePtr MakeVariable(std::string name);
NodePtr MakeUnary(UnaryOp op, NodePtr operand);
NodePtr MakeBinary(BinaryOp op, NodePtr lhs, NodePtr rhs);
NodePtr MakeCall(std::string name, std::vector<NodePtr> args);

/// Collects the set of variable names referenced in the tree (sorted,
/// deduplicated). Used for dependency analysis of conditions.
std::vector<std::string> CollectVariables(const NodePtr& root);

}  // namespace crew::expr

#endif  // CREW_EXPR_AST_H_
