#include "workload/generator.h"

#include <algorithm>

#include "expr/parser.h"
#include "model/builder.h"

namespace crew::workload {

Result<GeneratedSchema> WorkloadGenerator::Generate(int index) {
  const std::string name = "WF" + std::to_string(index);
  const int s = std::max(2, params_.steps_per_workflow);

  model::SchemaBuilder builder(name);
  std::vector<StepId> steps;
  for (int k = 1; k <= s; ++k) {
    StepId id = builder.AddTask("T" + std::to_string(k), "syn_" + name,
                                /*cost=*/1000);
    steps.push_back(id);
  }
  builder.Sequence(steps);
  builder.DeclareInput("WF.I1");

  GeneratedSchema out;
  // Failure site: deep enough that rolling back r steps stays in range.
  int failure_index =
      std::min(s - 1, std::max(1, params_.rollback_depth));  // 0-based
  out.failure_step = steps[failure_index];
  StepId origin = steps[std::max(
      0, failure_index - std::max(1, params_.rollback_depth))];
  builder.OnFail(out.failure_step, origin, /*max_attempts=*/4);

  // The rollback origin consumes the workflow input, so an input change
  // rolls back to it as well.
  out.input_consumer = origin;
  builder.step(origin).inputs = {"WF.I1"};
  // Failure injection is signalled through a workflow input so it works
  // identically under every architecture's instance-numbering scheme.
  builder.step(out.failure_step).inputs.push_back("WF.FAIL1");

  // Data-flow chain: each step consumes its predecessor's output, so
  // changed() conditions propagate re-execution decisions.
  for (int k = 1; k < s; ++k) {
    builder.step(steps[k]).inputs.push_back(
        "S" + std::to_string(steps[k - 1]) + ".O1");
  }

  // OCR calibration: with probability pr a step always re-executes on a
  // rollback re-visit; otherwise it reuses while its input is unchanged.
  for (int k = 0; k < s; ++k) {
    model::Step& step = builder.step(steps[k]);
    if (steps[k] == out.failure_step) continue;  // fails, so re-runs
    if (rng_->Bernoulli(params_.p_reexecution)) continue;  // always re-run
    std::string watched =
        k == 0 ? "WF.I1" : "S" + std::to_string(steps[k - 1]) + ".O1";
    Result<expr::NodePtr> condition =
        expr::ParseExpression("changed(" + watched + ")");
    if (!condition.ok()) return condition.status();
    step.ocr.reexec_condition = std::move(condition).value();
  }

  // Compensate-on-abort marking: the first w steps (the ones most likely
  // to have executed when an abort arrives).
  for (int k = 0; k < s; ++k) {
    builder.step(steps[k]).compensate_on_abort =
        k < params_.abort_compensated_steps;
  }

  Result<model::Schema> schema = builder.Build();
  if (!schema.ok()) return schema.status();
  Result<model::CompiledSchemaPtr> compiled =
      model::CompiledSchema::Compile(std::move(schema).value());
  if (!compiled.ok()) return compiled.status();
  out.schema = std::move(compiled).value();
  return out;
}

Result<GeneratedSchema> WorkloadGenerator::GenerateStructured(int index) {
  const std::string name = "SWF" + std::to_string(index);
  const std::string program = "syn_" + name;
  model::SchemaBuilder builder(name);
  builder.DeclareInput("WF.I1");

  // Prologue.
  StepId intake = builder.AddTask("Intake", program, 500);
  builder.step(intake).inputs = {"WF.I1"};

  // If-then-else on the workflow input.
  StepId decide = builder.AddTask("Decide", program, 400);
  StepId expedite = builder.AddTask("Expedite", program, 700);
  StepId standard = builder.AddTask("Standard", program, 700);
  StepId merge = builder.AddTask("Merge", program, 300);
  builder.Arc(intake, decide);
  builder.CondArc(decide, expedite, "WF.I1 >= 50");
  builder.ElseArc(decide, standard);
  builder.Arc(expedite, merge);
  builder.Arc(standard, merge);
  builder.SetJoin(merge, model::JoinKind::kOr);

  // Parallel block with an AND-join.
  StepId left = builder.AddTask("Left", program, 900);
  StepId right = builder.AddTask("Right", program, 600);
  StepId join = builder.AddTask("Join", program, 300);
  builder.Parallel(merge, {{left, left}, {right, right}}, join);

  // Bounded loop: Polish repeats until its attempt count reaches 2.
  StepId polish = builder.AddTask("Polish", "loop_" + name, 400);
  StepId finish = builder.AddTask("Finish", program, 500);
  builder.Arc(join, polish);
  builder.BackArc(polish, polish, "S" + std::to_string(polish) +
                                      ".O1 < 2");
  builder.CondArc(polish, finish,
                  "S" + std::to_string(polish) + ".O1 >= 2");
  builder.SetJoin(polish, model::JoinKind::kOr);

  // Failure spec on the epilogue: roll back into the parallel block.
  GeneratedSchema out;
  out.failure_step = finish;
  out.input_consumer = intake;
  builder.OnFail(finish, join, /*max_attempts=*/4);
  builder.step(finish).inputs = {"WF.FAIL1"};

  Result<model::Schema> schema = builder.Build();
  if (!schema.ok()) return schema.status();
  Result<model::CompiledSchemaPtr> compiled =
      model::CompiledSchema::Compile(std::move(schema).value());
  if (!compiled.ok()) return compiled.status();
  out.schema = std::move(compiled).value();
  return out;
}

Result<std::vector<GeneratedSchema>> WorkloadGenerator::GenerateAll() {
  std::vector<GeneratedSchema> out;
  failing_.assign(params_.num_schemas, {});
  input_changes_.assign(params_.num_schemas, {});
  aborts_.assign(params_.num_schemas, {});
  for (int index = 0; index < params_.num_schemas; ++index) {
    Result<GeneratedSchema> one = Generate(index);
    if (!one.ok()) return one.status();
    out.push_back(std::move(one).value());
    for (int64_t n = 1; n <= params_.instances_per_schema; ++n) {
      // Disruptions are mutually exclusive per instance so the per-
      // mechanism accounting stays clean.
      if (rng_->Bernoulli(params_.p_step_failure)) {
        failing_[index].insert(n);
      } else if (rng_->Bernoulli(params_.p_input_change)) {
        input_changes_[index].insert(n);
      } else if (rng_->Bernoulli(params_.p_abort)) {
        aborts_[index].insert(n);
      }
    }
  }
  return out;
}

runtime::CoordinationSpec WorkloadGenerator::MakeCoordinationSpec(
    const std::vector<GeneratedSchema>& schemas) const {
  runtime::CoordinationSpec spec;
  for (size_t index = 0; index < schemas.size(); ++index) {
    const std::string& name = schemas[index].schema->schema().name();
    const int s = schemas[index].schema->schema().num_steps();

    // Relative ordering between consecutive instances of the class on
    // `ro` step pairs (order-processing semantics).
    if (params_.relative_order_steps > 0) {
      runtime::RelativeOrderReq ro;
      ro.id = "ro_" + name;
      ro.workflow_a = name;
      ro.workflow_b = name;
      for (int k = 0;
           k < params_.relative_order_steps && k < s; ++k) {
        StepId step = static_cast<StepId>(2 + k);
        if (step > s) break;
        ro.step_pairs.emplace_back(step, step);
      }
      if (!ro.step_pairs.empty()) spec.relative_orders.push_back(ro);
    }

    // Mutual exclusion on per-class resources.
    for (int k = 0; k < params_.mutex_steps && k < s; ++k) {
      StepId step = static_cast<StepId>(1 + k);
      runtime::MutexReq me;
      me.id = "me_" + name + "_" + std::to_string(step);
      me.resource = "res_" + name + "_" + std::to_string(step);
      me.critical_steps = {{name, step}};
      spec.mutexes.push_back(me);
    }

    // Rollback dependency from this class to the next one.
    if (params_.rollback_dep_steps > 0 && schemas.size() > 1) {
      const std::string& next =
          schemas[(index + 1) % schemas.size()].schema->schema().name();
      for (int k = 0; k < params_.rollback_dep_steps; ++k) {
        runtime::RollbackDepReq rd;
        rd.id = "rd_" + name + "_" + std::to_string(k);
        rd.workflow_a = name;
        rd.step_a = static_cast<StepId>(std::min(s, 2 + k));
        rd.workflow_b = next;
        rd.step_b = 1;
        spec.rollback_deps.push_back(rd);
      }
    }
  }
  return spec;
}

void WorkloadGenerator::RegisterPrograms(
    const std::vector<GeneratedSchema>& schemas,
    runtime::ProgramRegistry* programs) {
  for (size_t index = 0; index < schemas.size(); ++index) {
    const GeneratedSchema& generated = schemas[index];
    const std::string program_name =
        "syn_" + generated.schema->schema().name();
    StepId failure_step = generated.failure_step;
    programs->Register(
        program_name,
        [failure_step](const runtime::ProgramContext& context) {
          runtime::ProgramOutcome outcome;
          if (context.step == failure_step && context.attempt == 1) {
            auto it = context.inputs.find("WF.FAIL1");
            if (it != context.inputs.end() && it->second.Truthy()) {
              outcome.success = false;
              return outcome;
            }
          }
          // Outputs are stable across attempts so that re-execution does
          // not cascade through every changed() condition downstream —
          // the paper's model assumes only a pr fraction of rolled-back
          // steps re-execute.
          outcome.outputs["O1"] = Value(int64_t{1});
          return outcome;
        });
    // Loop bodies (structured schemas) count their attempts so the loop
    // exit condition terminates.
    programs->Register(
        "loop_" + generated.schema->schema().name(),
        [](const runtime::ProgramContext& context) {
          runtime::ProgramOutcome outcome;
          outcome.outputs["O1"] =
              Value(static_cast<int64_t>(context.attempt));
          return outcome;
        });
  }
}

}  // namespace crew::workload
