#ifndef CREW_CENTRAL_ENGINE_H_
#define CREW_CENTRAL_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "model/compiled.h"
#include "model/deployment.h"
#include "runtime/coord.h"
#include "runtime/instance.h"
#include "runtime/ocr.h"
#include "runtime/programs.h"
#include "rules/engine.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/database.h"

namespace crew::central {

/// Configuration shared by the engine of centralized control and the
/// engines of parallel control.
struct EngineOptions {
  /// Navigation-and-other load per step (Table 3's parameter l).
  int64_t navigation_load = 100;
  /// Directory for the durable WFDB; empty => in-memory only.
  std::string wfdb_dir;
};

/// Topology oracle for *parallel* control: which engine owns an instance,
/// which engine arbitrates a mutual-exclusion resource, and the full
/// engine list (for coordination-event broadcast). Central control leaves
/// the engine's topology unset and everything stays engine-local.
class ParallelTopology {
 public:
  virtual ~ParallelTopology() = default;
  virtual NodeId OwnerEngine(const InstanceId& instance) const = 0;
  virtual NodeId LockOwnerEngine(const std::string& resource) const = 0;
  virtual std::vector<NodeId> AllEngines() const = 0;
};

/// The centralized workflow engine (§2, §3): maintains every instance's
/// state in the WFDB, navigates via the rule-based run-time system,
/// dispatches step programs to thin agents, and implements coordinated
/// execution (engine-locally, with zero inter-node messages) and the OCR
/// failure-handling strategy.
///
/// The same class serves as one engine of the *parallel* architecture:
/// parallel control instantiates several engines and partitions instances
/// among them; cross-engine coordination events are exchanged through the
/// CoordinationPeer hook.
class WorkflowEngine : public sim::MessageHandler {
 public:
  WorkflowEngine(NodeId id, sim::Context* context,
                 const runtime::ProgramRegistry* programs,
                 const model::Deployment* deployment,
                 const runtime::CoordinationSpec* coordination,
                 EngineOptions options = {});

  WorkflowEngine(const WorkflowEngine&) = delete;
  WorkflowEngine& operator=(const WorkflowEngine&) = delete;

  NodeId id() const { return id_; }

  /// Registers a schema (compiled) with the engine.
  void RegisterSchema(model::CompiledSchemaPtr schema);

  // ---- administrative interface (the front end calls these) ----

  /// Instantiates a workflow. `number` must be unique system-wide.
  Status StartWorkflow(const std::string& workflow, int64_t number,
                       std::map<std::string, Value> inputs);

  /// User-initiated abort. Rejected once committed.
  Status AbortWorkflow(const InstanceId& instance);

  /// User-initiated input change; triggers partial rollback + OCR
  /// re-execution of affected steps. Rejected once committed.
  Status ChangeInputs(const InstanceId& instance,
                      std::map<std::string, Value> new_inputs);

  runtime::WorkflowState QueryStatus(const InstanceId& instance) const;

  /// Final data table of a committed instance (empty if unknown).
  std::map<std::string, Value> FinalData(const InstanceId& instance) const;

  void HandleMessage(const sim::Message& message) override;

  // ---- parallel-control support ----
  /// Delivers a coordination event raised at a peer engine (or locally)
  /// for an instance owned here.
  void DeliverCoordinationEvent(const InstanceId& instance,
                                rules::EventToken event_token);
  /// Parallel control shares one tracker across engines (it models the
  /// front end's global view of instance start order); central control
  /// uses the engine's own. Non-owning.
  void set_shared_tracker(runtime::ConflictTracker* tracker) {
    shared_tracker_ = tracker;
  }
  /// Enables parallel-control behaviour: coordination-event broadcast,
  /// remote lock arbitration, cross-engine RD rollbacks. Non-owning.
  void set_topology(const ParallelTopology* topology) {
    topology_ = topology;
  }

  // ---- introspection for tests/benches ----
  /// Multi-line diagnostic dump of one instance's execution state:
  /// status, per-step records, pending rules and their missing events,
  /// compensation queue, and lock-wait state.
  std::string DebugInstance(const InstanceId& instance) const;
  /// Diagnostic dump of this engine's lock tables (held + waiters).
  std::string DebugLocks() const;
  int64_t committed_count() const { return committed_count_; }
  int64_t aborted_count() const { return aborted_count_; }
  size_t live_instances() const { return instances_.size(); }
  const storage::Database& wfdb() const { return wfdb_; }

 private:
  /// Why the current dispatch/compensation is happening; selects metric
  /// categories so benches can report per-mechanism counts.
  enum class Mode { kNormal, kFailure, kInputChange, kAbort };

  struct CompItem {
    StepId step = kInvalidStep;           // step to compensate
    std::function<void()> barrier;        // or a continuation
  };

  struct Instance {
    runtime::InstanceState state;
    rules::RuleEngine rules;
    runtime::WorkflowState status = runtime::WorkflowState::kExecuting;
    model::CompiledSchemaPtr schema;
    /// Terminal groups completed in the current epoch.
    std::set<int> groups_done;
    /// Last branch taken at each choice split (successor entry step).
    std::map<StepId, StepId> taken_branch;
    /// Steps whose StartStep is underway (blocks duplicate fires).
    std::set<StepId> starting;
    /// Serialized compensation queue.
    std::deque<CompItem> comp_queue;
    bool comp_running = false;
    Mode mode = Mode::kNormal;
    /// ME resources currently held, per step.
    std::map<StepId, std::vector<std::string>> held_resources;
    /// Progress marker at the last rollback (guards RD-induced repeats).
    int64_t last_rollback_seq = -1;
    StepId last_rollback_origin = kInvalidStep;
  };

  struct LockState {
    bool held = false;
    InstanceId holder;
    StepId holder_step = kInvalidStep;
    /// Waiter: instance, step, and the engine it runs on (self for local
    /// instances; remote engines queue through arbitration messages).
    std::deque<std::tuple<InstanceId, StepId, NodeId>> waiters;
  };

  /// Key for remotely arbitrated lock requests.
  using RemoteLockKey = std::tuple<std::string, InstanceId, StepId>;

  Instance* Find(const InstanceId& instance);
  const Instance* Find(const InstanceId& instance) const;

  /// Evaluates all fireable rules and dispatches their actions.
  void Pump(Instance* inst);

  /// Begins execution of a step: ME acquisition, OCR decision,
  /// compensation chain, program dispatch.
  void StartStep(Instance* inst, StepId step);
  void DispatchProgram(Instance* inst, StepId step, double cost_fraction);
  void DispatchCompensation(Instance* inst, StepId step);
  void OnProgramReply(const runtime::RunProgramReplyMsg& reply);
  void OnStepDone(Instance* inst, StepId step, bool reused);
  void OnStepFailed(Instance* inst, StepId step);
  void OnCompensated(Instance* inst, StepId step);

  /// Partial rollback to `origin` (failure or input change), §5.2
  /// mechanics performed engine-locally: event invalidation + rule reset.
  /// `rd_induced` marks a rollback propagated through a rollback
  /// dependency: it neither cascades further (no RD rings) nor repeats
  /// while the instance has made no progress since its last rollback.
  void Rollback(Instance* inst, StepId origin, Mode mode,
                bool rd_induced = false);

  void HandleBranchSwitch(Instance* inst, StepId split_step);
  void Commit(Instance* inst);
  void DoAbort(Instance* inst);
  /// Releases coordination state held by an ending instance: local RO
  /// watchers waiting on it and remotely arbitrated ME grants.
  void ResolveCoordinationAtEnd(Instance* inst);

  /// Compensation queue machinery (strictly serialized per instance).
  void EnqueueCompensation(Instance* inst, StepId step);
  void EnqueueBarrier(Instance* inst, std::function<void()> continuation);
  void RunCompQueue(Instance* inst);

  // ---- coordinated execution ----
  void ApplyRoBindings(Instance* inst);
  void NotifyRoWatchers(Instance* inst, StepId step);
  bool AcquireMutexes(Instance* inst, StepId step);
  void ReleaseMutexes(Instance* inst, StepId step);
  void ChargeCoordination(Instance* inst);
  /// Parallel control: broadcast "coord.done:S<k>" / "coord.end" to the
  /// peer engines when the class has coordination requirements.
  void BroadcastCoordination(Instance* inst, const std::string& suffix);
  /// Handles a coordination broadcast or ME-arbitration message.
  void OnCoordinationMessage(const sim::Message& message);
  /// Local lock-table acquire/release (the arbitration owner's side).
  bool LockAcquireLocal(const std::string& resource,
                        const InstanceId& instance, StepId step,
                        NodeId requester_engine);
  void LockReleaseLocal(const std::string& resource,
                        const InstanceId& instance, StepId step);
  void SendEngineMessage(NodeId to, const std::string& type,
                         const std::string& payload);

  runtime::ConflictTracker& tracker() {
    return shared_tracker_ != nullptr ? *shared_tracker_ : own_tracker_;
  }

  void PersistInstanceStatus(const Instance& inst);
  sim::MsgCategory CategoryFor(Mode mode) const;
  sim::LoadCategory LoadFor(Mode mode) const;

  NodeId id_;
  sim::Context* ctx_;
  const runtime::ProgramRegistry* programs_;
  const model::Deployment* deployment_;
  const runtime::CoordinationSpec* coordination_;
  EngineOptions options_;

  std::map<std::string, model::CompiledSchemaPtr> schemas_;
  std::map<InstanceId, std::unique_ptr<Instance>> instances_;
  /// Coordination instance summary (survives instance teardown).
  std::map<InstanceId, runtime::WorkflowState> summary_;
  std::map<InstanceId, std::map<std::string, Value>> archived_data_;

  /// (lead instance, lead step) -> local watchers to notify on completion.
  std::map<std::pair<InstanceId, StepId>,
           std::vector<std::pair<InstanceId, rules::EventToken>>>
      ro_watch_;
  /// Parallel control: watches on *remote* leading instances, resolved by
  /// coordination broadcasts.
  std::map<std::pair<InstanceId, StepId>,
           std::vector<std::pair<InstanceId, rules::EventToken>>>
      remote_ro_watch_;
  /// Coordination-event log built from broadcasts: completed coordination
  /// -relevant steps and ended instances at peer engines.
  std::set<std::pair<InstanceId, StepId>> coord_done_log_;
  std::set<InstanceId> coord_ended_log_;

  std::map<std::string, LockState> locks_;
  /// Remote lock arbitration bookkeeping (requester side).
  std::set<RemoteLockKey> remote_lock_pending_;
  std::set<RemoteLockKey> remote_lock_granted_;

  /// Last-known load per agent, learned from RunProgramReply acks.
  std::map<NodeId, int64_t> agent_load_;

  runtime::ConflictTracker own_tracker_;
  runtime::ConflictTracker* shared_tracker_ = nullptr;
  const ParallelTopology* topology_ = nullptr;

  storage::Database wfdb_;
  int64_t committed_count_ = 0;
  int64_t aborted_count_ = 0;
};

}  // namespace crew::central

#endif  // CREW_CENTRAL_ENGINE_H_
