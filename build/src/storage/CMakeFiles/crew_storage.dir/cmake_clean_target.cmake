file(REMOVE_RECURSE
  "libcrew_storage.a"
)
