#include "central/system.h"

namespace crew::central {

CentralSystem::CentralSystem(sim::Backend* backend,
                             const runtime::ProgramRegistry* programs,
                             const model::Deployment* deployment,
                             const runtime::CoordinationSpec* coordination,
                             int num_agents, EngineOptions options)
    : engine_context_(backend->ContextFor(1)) {
  engine_ = std::make_unique<WorkflowEngine>(
      /*id=*/1, engine_context_, programs, deployment, coordination,
      std::move(options));
  engine_context_->tracer().SetNodeName(1, "engine-1");
  for (int i = 0; i < num_agents; ++i) {
    NodeId id = kFirstAgentId + i;
    sim::Context* context = backend->ContextFor(id);
    agents_.push_back(std::make_unique<ThinAgent>(id, context, programs));
    agent_ids_.push_back(id);
    context->tracer().SetNodeName(id, "agent-" + std::to_string(id));
  }
}

}  // namespace crew::central
