#ifndef CREW_RUNTIME_OCR_H_
#define CREW_RUNTIME_OCR_H_

#include <cstdint>
#include <string>

#include "model/step.h"
#include "runtime/instance.h"

namespace crew::runtime {

/// What to do when a StepExecute arrives for a step in the context of a
/// partial rollback + re-execution (the OCR algorithm, Figure 5).
enum class OcrDecision {
  kFirstExecution,         ///< never executed: run normally
  kReuse,                  ///< previous results stand: emit step.done only
  kPartialCompIncrReexec,  ///< partial compensation + incremental re-exec
  kFullCompReexec,         ///< complete compensation + complete re-exec
};

const char* OcrDecisionName(OcrDecision decision);

/// Costs (in instructions) the decision implies, split so load accounting
/// can attribute compensation vs re-execution work.
struct OcrCost {
  int64_t compensation = 0;
  int64_t reexecution = 0;
  int64_t total() const { return compensation + reexecution; }
};

/// Implements the decision box of the OCR algorithm:
///  - no prior completed execution           -> kFirstExecution
///  - reexec condition false                 -> kReuse (savings!)
///  - partial path configured and applicable -> kPartialCompIncrReexec
///  - otherwise                              -> kFullCompReexec
///
/// The re-execution condition is evaluated with the step's OcrEnv so
/// changed(x) compares against the previous execution's snapshot.
OcrDecision DecideOcr(const model::Step& step, const InstanceState& state);

/// Cost model for a decision given the step's nominal cost. Compensation
/// cost equals program cost scaled by the partial fraction; re-execution
/// likewise with the incremental fraction.
OcrCost CostOf(const model::Step& step, OcrDecision decision);

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_OCR_H_
