#include "net/cluster.h"

#include <thread>

namespace crew::net {

Cluster::Cluster(Topology topology, rt::RuntimeOptions runtime_options,
                 SocketTransportOptions transport_options)
    : topology_(std::move(topology)) {
  for (const Endpoint& endpoint : topology_.Endpoints()) {
    nodes_.push_back(std::make_unique<NetNode>(
        topology_, endpoint, runtime_options, transport_options));
  }
}

Cluster::~Cluster() { Shutdown(); }

Status Cluster::Bind() {
  for (auto& node : nodes_) {
    CREW_RETURN_IF_ERROR(node->Bind());
  }
  return Status::OK();
}

void Cluster::Start() {
  for (auto& node : nodes_) node->Start();
}

bool Cluster::WaitConnected(std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (auto& node : nodes_) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() < 0) remaining = std::chrono::milliseconds(0);
    if (!node->WaitConnected(remaining)) return false;
  }
  return true;
}

void Cluster::Quiesce() {
  for (;;) {
    bool quiet = true;
    int64_t admitted = 0;
    for (auto& node : nodes_) {
      quiet = quiet && node->LooksQuiet();
      admitted += node->AdmittedWork();
    }
    if (!quiet) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    // Second sweep: no admission anywhere in between means no task or
    // frame was in flight past the first sweep.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    bool still_quiet = true;
    int64_t admitted_again = 0;
    for (auto& node : nodes_) {
      still_quiet = still_quiet && node->LooksQuiet();
      admitted_again += node->AdmittedWork();
    }
    if (still_quiet && admitted_again == admitted) return;
  }
}

void Cluster::Shutdown() {
  for (auto& node : nodes_) node->Shutdown();
}

NetNode* Cluster::At(const Endpoint& endpoint) {
  for (auto& node : nodes_) {
    if (node->self() == endpoint) return node.get();
  }
  return nullptr;
}

NetNode* Cluster::HostOf(NodeId id) {
  const Endpoint* endpoint = topology_.Find(id);
  return endpoint == nullptr ? nullptr : At(*endpoint);
}

std::vector<NetNode*> Cluster::nodes() {
  std::vector<NetNode*> out;
  out.reserve(nodes_.size());
  for (auto& node : nodes_) out.push_back(node.get());
  return out;
}

sim::Metrics Cluster::MergedMetrics() const {
  sim::Metrics merged;
  for (const auto& node : nodes_) {
    merged.MergeFrom(node->runtime().MergedMetrics());
  }
  return merged;
}

}  // namespace crew::net
