#ifndef CREW_EXPR_LEXER_H_
#define CREW_EXPR_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace crew::expr {

enum class TokenKind {
  kEnd,
  kIdent,     // data item names like S1.O2, WF.I1, amount
  kInt,
  kDouble,
  kString,    // "quoted"
  kLParen,
  kRParen,
  kComma,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,        // ==
  kNe,        // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,       // and / &&
  kOr,        // or / ||
  kNot,       // not / !
  kTrue,
  kFalse,
  kNull,
};

/// Returns a printable token-kind name for diagnostics.
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier / string payload
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;   // byte offset in source, for error messages
};

/// Tokenizes a condition expression. Identifiers may contain dots so that
/// workflow data items ("S2.O1", "WF.I1") are single tokens.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace crew::expr

#endif  // CREW_EXPR_LEXER_H_
