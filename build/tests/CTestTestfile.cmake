# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/central_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/laws_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/expr_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/serde_property_test[1]_include.cmake")
include("/root/repo/build/tests/central_edge_test[1]_include.cmake")
