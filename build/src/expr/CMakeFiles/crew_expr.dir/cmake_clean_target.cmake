file(REMOVE_RECURSE
  "libcrew_expr.a"
)
