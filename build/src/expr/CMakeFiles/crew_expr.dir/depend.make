# Empty dependencies file for crew_expr.
# This may be replaced when dependencies are built.
