// Reproduces Table 5: Load and Physical Messages in Parallel Workflow
// Control (e engines sharing the instance load).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  crew::bench::BenchSession session("table5_parallel", argc, argv,
                                    /*default_json=*/true);
  crew::workload::Params params;  // Table 3 midpoints
  params.num_schemas = 20;
  params.instances_per_schema = 10;
  params.num_engines = 4;

  crew::workload::RunResult result = crew::workload::RunWorkload(
      params, crew::workload::Architecture::kParallel, session.tracer());
  session.Record("parallel", result);

  crew::bench::PrintTable(
      "Table 5: Parallel Workflow Control (paper vs measured)", params,
      result, crew::analysis::ParallelLoad(params),
      crew::analysis::ParallelMessages(params),
      crew::bench::ParallelEngineNodes(params.num_engines));
  session.Finish();
  return 0;
}
