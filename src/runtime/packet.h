#ifndef CREW_RUNTIME_PACKET_H_
#define CREW_RUNTIME_PACKET_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.h"
#include "common/ids.h"
#include "common/small_vector.h"
#include "common/status.h"
#include "common/value.h"
#include "rules/token.h"

namespace crew::runtime {

/// One relative-ordering obligation carried with a workflow instance
/// (the "R.O. Leading / R.O. Lagging" lines of the sample packet in
/// Figure 7). `leading == true` means *this* instance leads: after
/// executing `my_step` the agent must notify the lagging instance's
/// agent with an AddEvent. `leading == false` means this instance lags:
/// the rule firing `my_step` gets an AddPrecondition on the leading
/// instance's corresponding step.done.
struct RoLink {
  InstanceId other;          ///< the other instance of the ordered pair
  StepId my_step = kInvalidStep;
  StepId other_step = kInvalidStep;
  bool leading = false;

  bool operator==(const RoLink& o) const {
    return other == o.other && my_step == o.my_step &&
           other_step == o.other_step && leading == o.leading;
  }

  /// "WF3#15:S2>S4" wire form (see packet.cc).
  std::string Serialize() const;
  static Result<RoLink> Parse(const std::string& text, bool leading);
};

/// A rollback-dependency binding carried with the *leading* instance:
/// if this instance rolls back to or above `my_step`, the dependent
/// instance must be rolled back to `other_step` (§3 rollback dependency).
struct RdLink {
  InstanceId other;  ///< the dependent (lagging) instance
  StepId my_step = kInvalidStep;
  StepId other_step = kInvalidStep;

  bool operator==(const RdLink& o) const {
    return other == o.other && my_step == o.my_step &&
           other_step == o.other_step;
  }

  std::string Serialize() const;
  static Result<RdLink> Parse(const std::string& text);
};

/// One event occurrence carried in a packet: the token, its occurrence
/// number at the producing instance (so loop iterations re-post and
/// duplicate fan-out packets do not), and the epoch it was produced in
/// (so halt-thread invalidation never kills newer-epoch events).
///
/// In memory the token is interned (rules::EventToken); the spelled-out
/// name only exists on the wire — Parse() interns, Serialize()
/// stringifies, and the wire format is unchanged.
struct EventOcc {
  rules::EventToken token = rules::kInvalidEventToken;
  int64_t occ = 1;
  int64_t epoch = 0;

  EventOcc() = default;
  EventOcc(rules::EventToken t, int64_t o, int64_t e)
      : token(t), occ(o), epoch(e) {}
  /// Convenience: interns `name` (tests and cold call sites).
  EventOcc(std::string_view name, int64_t o, int64_t e)
      : token(rules::InternToken(name)), occ(o), epoch(e) {}

  /// Spelled-out token name.
  std::string_view name() const { return rules::TokenName(token); }

  std::string Serialize() const;  // "token@occ@epoch"
  /// Appends the wire form to `*out` without temporaries.
  void AppendTo(std::string* out) const;
  static Result<EventOcc> Parse(const std::string& text);
};

/// Packet container aliases: sorted flat tables backed by inline
/// (SmallVector) storage for the small fixed-shape entries (step->agent
/// pairs, event occurrences, links), so ordinary packets build, merge
/// and parse those tables with no heap allocation; oversized packets
/// spill transparently. The data table stays std::vector-backed:
/// measured on BM_PacketParseBinary, inlining its string+Value pairs
/// made packets slower at every size (the fat inline block bloats the
/// struct past what the saved allocation buys back).
using PacketDataMap =
    FlatMap<std::string, Value,
            std::vector<std::pair<std::string, Value>>>;
using PacketExecMap =
    FlatMap<StepId, NodeId, SmallVector<std::pair<StepId, NodeId>, 8>>;
using PacketEventList = SmallVector<EventOcc, 8>;
using PacketRoList = SmallVector<RoLink, 4>;
using PacketRdList = SmallVector<RdLink, 4>;

/// The workflow packet exchanged between distributed agents (§4.1,
/// Figure 7). It accumulates the instance's state as control flows from
/// agent to agent: data items, (valid) events, which agent executed which
/// step, relative-ordering obligations, and the re-execution epoch.
struct WorkflowPacket {
  InstanceId instance;
  StepId target_step = kInvalidStep;  ///< Action: Execute S<target_step>
  int64_t epoch = 0;                  ///< re-execution generation
  /// Coordination agent chosen at start time by the front end's
  /// placement policy; kInvalidNode on packets predating placement
  /// (receivers fall back to the static eligible-first rule).
  NodeId coordinator = kInvalidNode;

  // The two tables are flat sorted vectors, not std::map: packets are
  // filled once (from the instance snapshot or from sorted wire input,
  // both O(1) appends) and then scanned in order by the codecs, so the
  // node-per-entry allocation and pointer chasing of a tree map was pure
  // overhead on the serialize/parse hot path.
  PacketDataMap data;                         ///< data table snapshot
  PacketEventList events;                     ///< valid event occurrences
  PacketExecMap executed_by;                  ///< step -> executing agent
  PacketRoList ro_links;                      ///< ordering obligations
  PacketRdList rd_links;                      ///< rollback dependencies

  /// Serialized size is the wire size used for byte metrics. Encodes in
  /// the process-wide active codec (runtime/codec.h); Parse()
  /// auto-detects the format, so mixed-codec peers and WAL records from
  /// either codec always read back.
  std::string Serialize() const;
  /// Explicit-codec forms (the codec seam; benches and nesting callers).
  std::string SerializeKv() const;
  std::string SerializeBinary() const;
  static Result<WorkflowPacket> Parse(const std::string& payload);
};

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_PACKET_H_
