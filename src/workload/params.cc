#include "workload/params.h"

#include <sstream>

namespace crew::workload {

std::string Params::Describe() const {
  std::ostringstream os;
  os << "  s  (steps/workflow)            = " << steps_per_workflow << "\n"
     << "  c  (workflow schemas)          = " << num_schemas << "\n"
     << "  i  (instances/schema)          = " << instances_per_schema
     << "\n"
     << "  e  (engines)                   = " << num_engines << "\n"
     << "  z  (agents)                    = " << num_agents << "\n"
     << "  a  (eligible agents/step)      = " << eligible_per_step << "\n"
     << "  d  (conflicting defs/step)     = " << conflicting_defs_per_step
     << "\n"
     << "  r  (steps rolled back)         = " << rollback_depth << "\n"
     << "  v  (steps invalidated)         = " << invalidated_steps << "\n"
     << "  f  (final steps)               = " << final_steps << "\n"
     << "  w  (steps compensated/abort)   = " << abort_compensated_steps
     << "\n"
     << "  me (mutex steps/WF)            = " << mutex_steps << "\n"
     << "  ro (relative-order steps/WF)   = " << relative_order_steps
     << "\n"
     << "  rd (rollback-dep steps/WF)     = " << rollback_dep_steps << "\n"
     << "  l  (navigation load/step)      = " << navigation_load << "\n"
     << "  pf (P[step failure])           = " << p_step_failure << "\n"
     << "  pi (P[input change])           = " << p_input_change << "\n"
     << "  pa (P[abort])                  = " << p_abort << "\n"
     << "  pr (P[re-execution])           = " << p_reexecution << "\n";
  return os.str();
}

}  // namespace crew::workload
