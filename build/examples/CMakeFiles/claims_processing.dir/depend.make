# Empty dependencies file for claims_processing.
# This may be replaced when dependencies are built.
