file(REMOVE_RECURSE
  "CMakeFiles/central_edge_test.dir/central_edge_test.cc.o"
  "CMakeFiles/central_edge_test.dir/central_edge_test.cc.o.d"
  "central_edge_test"
  "central_edge_test.pdb"
  "central_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/central_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
