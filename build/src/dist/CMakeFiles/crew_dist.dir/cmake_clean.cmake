file(REMOVE_RECURSE
  "CMakeFiles/crew_dist.dir/agent.cc.o"
  "CMakeFiles/crew_dist.dir/agent.cc.o.d"
  "CMakeFiles/crew_dist.dir/frontend.cc.o"
  "CMakeFiles/crew_dist.dir/frontend.cc.o.d"
  "CMakeFiles/crew_dist.dir/system.cc.o"
  "CMakeFiles/crew_dist.dir/system.cc.o.d"
  "libcrew_dist.a"
  "libcrew_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
