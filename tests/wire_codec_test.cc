// Codec-equivalence tests: every typed payload in runtime/wire.h must
// mean the same thing under the kv text codec and the binary codec. For
// each message we serialize under both codecs, parse both byte strings
// back (Parse auto-detects the format from the first byte), and compare
// the four results field by field. A divergence in either direction —
// binary dropping a field, kv quantizing differently — fails here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/codec.h"
#include "runtime/wire.h"

namespace crew::runtime {
namespace {

// Serializes `msg` under both codecs and hands every parsed variant to
// `check(parsed, which)`. The binary string must actually be binary and
// the kv string actually kv, so the auto-detection path is exercised.
template <typename Msg, typename Check>
void ForEachCodecRoundTrip(const Msg& msg, Check check) {
  std::string kv_bytes, bin_bytes;
  {
    ScopedPayloadCodec guard(PayloadCodec::kKv);
    kv_bytes = msg.Serialize();
  }
  {
    ScopedPayloadCodec guard(PayloadCodec::kBinary);
    bin_bytes = msg.Serialize();
  }
  ASSERT_FALSE(LooksBinary(kv_bytes));
  ASSERT_TRUE(LooksBinary(bin_bytes));
  // Binary should never be larger than the kv text form for our
  // payloads (field names collapse to tag bytes), modulo its fixed
  // 2-byte magic+id preamble, which an *empty* kv payload lacks.
  EXPECT_LE(bin_bytes.size(), kv_bytes.size() + 2);
  Result<Msg> from_kv = Msg::Parse(kv_bytes);
  ASSERT_TRUE(from_kv.ok()) << from_kv.status().ToString();
  Result<Msg> from_bin = Msg::Parse(bin_bytes);
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
  check(from_kv.value(), "kv");
  check(from_bin.value(), "binary");
}

Value HostileValue(int i) {
  switch (i % 5) {
    case 0: return Value();
    case 1: return Value(i % 2 == 1);
    case 2: return Value(static_cast<int64_t>(-1'000'000 + 31 * i));
    case 3: return Value(0.5 * i - 7.25);
    default: return Value("v=\"x\"\n\\esc;,@" + std::to_string(i));
  }
}

TEST(WireCodec, WorkflowStart) {
  WorkflowStartMsg m;
  m.instance = {"WF_start", 41};
  m.reply_to = 7;
  for (int i = 0; i < 6; ++i) m.inputs["I" + std::to_string(i)] = HostileValue(i);
  m.ro_links.push_back({{"WFX", 3}, 2, 5, true});
  m.ro_links.push_back({{"WFY", 8}, 1, 1, false});
  m.rd_links.push_back({{"WFZ", 2}, 4, 6});
  m.parent = {"WF_parent", 9};
  m.parent_step = 12;
  ForEachCodecRoundTrip(m, [&](const WorkflowStartMsg& p, const char* which) {
    EXPECT_EQ(p.instance, m.instance) << which;
    EXPECT_EQ(p.inputs, m.inputs) << which;
    EXPECT_EQ(p.reply_to, m.reply_to) << which;
    ASSERT_EQ(p.ro_links.size(), m.ro_links.size()) << which;
    for (size_t i = 0; i < m.ro_links.size(); ++i) {
      EXPECT_EQ(p.ro_links[i].other, m.ro_links[i].other) << which;
      EXPECT_EQ(p.ro_links[i].my_step, m.ro_links[i].my_step) << which;
      EXPECT_EQ(p.ro_links[i].other_step, m.ro_links[i].other_step) << which;
      EXPECT_EQ(p.ro_links[i].leading, m.ro_links[i].leading) << which;
    }
    ASSERT_EQ(p.rd_links.size(), m.rd_links.size()) << which;
    EXPECT_EQ(p.rd_links[0].other, m.rd_links[0].other) << which;
    EXPECT_EQ(p.parent, m.parent) << which;
    EXPECT_EQ(p.parent_step, m.parent_step) << which;
  });
  // Top-level start (no parent): the parent fields must stay defaulted.
  WorkflowStartMsg top;
  top.instance = {"WF_top", 1};
  ForEachCodecRoundTrip(top, [&](const WorkflowStartMsg& p, const char* which) {
    EXPECT_TRUE(p.parent.workflow.empty()) << which;
    EXPECT_EQ(p.parent_step, kInvalidStep) << which;
  });
}

TEST(WireCodec, WorkflowChangeInputs) {
  WorkflowChangeInputsMsg m;
  m.instance = {"WF", 5};
  m.new_inputs["A"] = Value(std::string("x\ny"));
  m.new_inputs["B"] = Value(int64_t{-3});
  m.origin_step = 4;
  ForEachCodecRoundTrip(
      m, [&](const WorkflowChangeInputsMsg& p, const char* which) {
        EXPECT_EQ(p.instance, m.instance) << which;
        EXPECT_EQ(p.new_inputs, m.new_inputs) << which;
        EXPECT_EQ(p.origin_step, m.origin_step) << which;
      });
}

TEST(WireCodec, WorkflowAbortAndStatus) {
  WorkflowAbortMsg abort;
  abort.instance = {"WF_abort", 77};
  ForEachCodecRoundTrip(abort,
                        [&](const WorkflowAbortMsg& p, const char* which) {
                          EXPECT_EQ(p.instance, abort.instance) << which;
                        });
  WorkflowStatusMsg status;
  status.instance = {"WF_q", 3};
  status.reply_to = 11;
  ForEachCodecRoundTrip(status,
                        [&](const WorkflowStatusMsg& p, const char* which) {
                          EXPECT_EQ(p.instance, status.instance) << which;
                          EXPECT_EQ(p.reply_to, status.reply_to) << which;
                        });
  for (WorkflowState state :
       {WorkflowState::kUnknown, WorkflowState::kExecuting,
        WorkflowState::kCommitted, WorkflowState::kAborted}) {
    WorkflowStatusReplyMsg reply;
    reply.instance = {"WF_q", 3};
    reply.state = state;
    ForEachCodecRoundTrip(
        reply, [&](const WorkflowStatusReplyMsg& p, const char* which) {
          EXPECT_EQ(p.instance, reply.instance) << which;
          EXPECT_EQ(p.state, reply.state) << which;
        });
  }
}

TEST(WireCodec, StepExecutePacket) {
  StepExecuteMsg m;
  m.packet.instance = {"WF_pkt", 13};
  m.packet.target_step = 6;
  m.packet.epoch = 2;
  for (int i = 0; i < 8; ++i) {
    m.packet.data["S" + std::to_string(i) + ".O1"] = HostileValue(i);
  }
  m.packet.events.push_back({"S1.done", 2, 1});
  m.packet.events.push_back({"S2.done", 1, 0});
  m.packet.executed_by[1] = 10;
  m.packet.executed_by[2] = 20;
  m.packet.ro_links.push_back({{"WFo", 4}, 1, 2, false});
  m.packet.rd_links.push_back({{"WFr", 6}, 3, 5});
  m.packet.coordinator = 7;
  ForEachCodecRoundTrip(m, [&](const StepExecuteMsg& p, const char* which) {
    EXPECT_EQ(p.packet.instance, m.packet.instance) << which;
    EXPECT_EQ(p.packet.target_step, m.packet.target_step) << which;
    EXPECT_EQ(p.packet.epoch, m.packet.epoch) << which;
    EXPECT_EQ(p.packet.coordinator, 7) << which;
    EXPECT_EQ(p.packet.data, m.packet.data) << which;
    ASSERT_EQ(p.packet.events.size(), m.packet.events.size()) << which;
    for (size_t i = 0; i < m.packet.events.size(); ++i) {
      EXPECT_EQ(p.packet.events[i].token, m.packet.events[i].token) << which;
      EXPECT_EQ(p.packet.events[i].occ, m.packet.events[i].occ) << which;
      EXPECT_EQ(p.packet.events[i].epoch, m.packet.events[i].epoch) << which;
    }
    EXPECT_EQ(p.packet.executed_by, m.packet.executed_by) << which;
    ASSERT_EQ(p.packet.ro_links.size(), 1u) << which;
    EXPECT_EQ(p.packet.ro_links[0].other, m.packet.ro_links[0].other) << which;
    ASSERT_EQ(p.packet.rd_links.size(), 1u) << which;
    EXPECT_EQ(p.packet.rd_links[0].other, m.packet.rd_links[0].other) << which;
  });

  // Unplaced packets omit the coordinator on the wire; the receiver
  // must see the kInvalidNode default, not 0 (a real node id).
  StepExecuteMsg unplaced;
  unplaced.packet.instance = {"WF_pkt", 14};
  unplaced.packet.target_step = 1;
  ForEachCodecRoundTrip(
      unplaced, [&](const StepExecuteMsg& p, const char* which) {
        EXPECT_EQ(p.packet.coordinator, kInvalidNode) << which;
      });
}

TEST(WireCodec, StepLifecycle) {
  StepCompensateMsg comp;
  comp.instance = {"WF", 2};
  comp.step = 9;
  comp.epoch = 3;
  ForEachCodecRoundTrip(comp,
                        [&](const StepCompensateMsg& p, const char* which) {
                          EXPECT_EQ(p.instance, comp.instance) << which;
                          EXPECT_EQ(p.step, comp.step) << which;
                          EXPECT_EQ(p.epoch, comp.epoch) << which;
                        });
  StepCompletedMsg done;
  done.instance = {"WF", 2};
  done.step = 5;
  done.epoch = 1;
  done.results["final"] = Value(std::string("ok\nline2"));
  done.results["count"] = Value(int64_t{42});
  ForEachCodecRoundTrip(done,
                        [&](const StepCompletedMsg& p, const char* which) {
                          EXPECT_EQ(p.instance, done.instance) << which;
                          EXPECT_EQ(p.step, done.step) << which;
                          EXPECT_EQ(p.epoch, done.epoch) << which;
                          EXPECT_EQ(p.results, done.results) << which;
                        });
  StepStatusMsg status;
  status.instance = {"WF", 2};
  status.step = 7;
  status.reply_to = 4;
  ForEachCodecRoundTrip(status,
                        [&](const StepStatusMsg& p, const char* which) {
                          EXPECT_EQ(p.instance, status.instance) << which;
                          EXPECT_EQ(p.step, status.step) << which;
                          EXPECT_EQ(p.reply_to, status.reply_to) << which;
                        });
  for (StepRunState state :
       {StepRunState::kUnknown, StepRunState::kExecuting, StepRunState::kDone,
        StepRunState::kFailed, StepRunState::kCompensated}) {
    StepStatusReplyMsg reply;
    reply.instance = {"WF", 2};
    reply.step = 7;
    reply.state = state;
    reply.responder = 6;
    ForEachCodecRoundTrip(
        reply, [&](const StepStatusReplyMsg& p, const char* which) {
          EXPECT_EQ(p.instance, reply.instance) << which;
          EXPECT_EQ(p.step, reply.step) << which;
          EXPECT_EQ(p.state, reply.state) << which;
          EXPECT_EQ(p.responder, reply.responder) << which;
        });
  }
}

TEST(WireCodec, RollbackCarriesNestedPacket) {
  WorkflowRollbackMsg m;
  m.instance = {"WF_rb", 21};
  m.origin_step = 3;
  m.new_epoch = 8;
  m.state.instance = m.instance;
  m.state.target_step = 3;
  m.state.epoch = 7;
  m.state.data["S1.O1"] = Value("nested\nnewline\\and\\backslash");
  m.state.events.push_back({"S1.done", 1, 7});
  ForEachCodecRoundTrip(
      m, [&](const WorkflowRollbackMsg& p, const char* which) {
        EXPECT_EQ(p.instance, m.instance) << which;
        EXPECT_EQ(p.origin_step, m.origin_step) << which;
        EXPECT_EQ(p.new_epoch, m.new_epoch) << which;
        EXPECT_EQ(p.state.instance, m.state.instance) << which;
        EXPECT_EQ(p.state.target_step, m.state.target_step) << which;
        EXPECT_EQ(p.state.epoch, m.state.epoch) << which;
        EXPECT_EQ(p.state.data, m.state.data) << which;
        ASSERT_EQ(p.state.events.size(), 1u) << which;
        EXPECT_EQ(p.state.events[0].token, m.state.events[0].token) << which;
      });
}

TEST(WireCodec, HaltAndCompensate) {
  HaltThreadMsg halt;
  halt.instance = {"WF", 2};
  halt.origin_step = 4;
  halt.new_epoch = 6;
  ForEachCodecRoundTrip(halt, [&](const HaltThreadMsg& p, const char* which) {
    EXPECT_EQ(p.instance, halt.instance) << which;
    EXPECT_EQ(p.origin_step, halt.origin_step) << which;
    EXPECT_EQ(p.new_epoch, halt.new_epoch) << which;
  });
  CompensateSetMsg set;
  set.instance = {"WF", 2};
  set.origin_step = 2;
  set.remaining = {5, 3, 1};
  set.epoch = 4;
  set.resume_agent = 9;
  set.resume.instance = set.instance;
  set.resume.target_step = 2;
  set.resume.data["S0.O1"] = Value(int64_t{17});
  ForEachCodecRoundTrip(set, [&](const CompensateSetMsg& p,
                                 const char* which) {
    EXPECT_EQ(p.instance, set.instance) << which;
    EXPECT_EQ(p.origin_step, set.origin_step) << which;
    EXPECT_EQ(p.remaining, set.remaining) << which;
    EXPECT_EQ(p.epoch, set.epoch) << which;
    EXPECT_EQ(p.resume_agent, set.resume_agent) << which;
    EXPECT_EQ(p.resume.instance, set.resume.instance) << which;
    EXPECT_EQ(p.resume.data, set.resume.data) << which;
  });
  CompensateThreadMsg thread;
  thread.instance = {"WF", 2};
  thread.step = 6;
  thread.until_join = 8;
  thread.epoch = 2;
  ForEachCodecRoundTrip(thread,
                        [&](const CompensateThreadMsg& p, const char* which) {
                          EXPECT_EQ(p.instance, thread.instance) << which;
                          EXPECT_EQ(p.step, thread.step) << which;
                          EXPECT_EQ(p.until_join, thread.until_join) << which;
                          EXPECT_EQ(p.epoch, thread.epoch) << which;
                        });
}

TEST(WireCodec, StateInformationPair) {
  StateInformationMsg q;
  q.reply_to = 3;
  q.instance = {"WF_elect", 4};
  q.step = 2;
  ForEachCodecRoundTrip(q,
                        [&](const StateInformationMsg& p, const char* which) {
                          EXPECT_EQ(p.reply_to, q.reply_to) << which;
                          EXPECT_EQ(p.instance, q.instance) << which;
                          EXPECT_EQ(p.step, q.step) << which;
                        });
  StateInformationReplyMsg r;
  r.responder = 5;
  r.load = 12;
  r.instance = {"WF_elect", 4};
  r.step = 2;
  ForEachCodecRoundTrip(
      r, [&](const StateInformationReplyMsg& p, const char* which) {
        EXPECT_EQ(p.responder, r.responder) << which;
        EXPECT_EQ(p.load, r.load) << which;
        EXPECT_EQ(p.instance, r.instance) << which;
        EXPECT_EQ(p.step, r.step) << which;
      });
}

TEST(WireCodec, RuleDistribution) {
  AddRuleMsg rule;
  rule.instance = {"WF", 3};
  rule.rule_id = "exec.S4.via.S3";
  rule.trigger_events = {"S3.done", "S2.done"};
  rule.condition_source = "S3.O1 >= 10 and changed(WF.I1)";
  rule.action_step = 4;
  ForEachCodecRoundTrip(rule, [&](const AddRuleMsg& p, const char* which) {
    EXPECT_EQ(p.instance, rule.instance) << which;
    EXPECT_EQ(p.rule_id, rule.rule_id) << which;
    EXPECT_EQ(p.trigger_events, rule.trigger_events) << which;
    EXPECT_EQ(p.condition_source, rule.condition_source) << which;
    EXPECT_EQ(p.action_step, rule.action_step) << which;
  });
  // Empty condition must stay empty (the field is elided on the wire).
  AddRuleMsg bare;
  bare.instance = {"WF", 3};
  bare.rule_id = "r1";
  bare.action_step = 1;
  ForEachCodecRoundTrip(bare, [&](const AddRuleMsg& p, const char* which) {
    EXPECT_TRUE(p.condition_source.empty()) << which;
    EXPECT_TRUE(p.trigger_events.empty()) << which;
  });
  AddEventMsg event;
  event.instance = {"WF", 3};
  event.event_token = "S3.done";
  ForEachCodecRoundTrip(event, [&](const AddEventMsg& p, const char* which) {
    EXPECT_EQ(p.instance, event.instance) << which;
    EXPECT_EQ(p.event_token, event.event_token) << which;
  });
  AddPreconditionMsg pre;
  pre.instance = {"WF", 3};
  pre.rule_id = "exec.S4.via.S3";
  pre.event_token = "S2.done";
  ForEachCodecRoundTrip(pre,
                        [&](const AddPreconditionMsg& p, const char* which) {
                          EXPECT_EQ(p.instance, pre.instance) << which;
                          EXPECT_EQ(p.rule_id, pre.rule_id) << which;
                          EXPECT_EQ(p.event_token, pre.event_token) << which;
                        });
}

TEST(WireCodec, RunProgramQuantizesCostFractionIdentically) {
  RunProgramMsg m;
  m.instance = {"WF", 6};
  m.step = 3;
  m.program = "P3";
  m.attempt = 2;
  m.compensation = true;
  m.cost_fraction = 0.333333;  // survives the ppm grid exactly
  m.nominal_cost = 900;
  m.designated = 12;
  m.inputs["I1"] = Value(int64_t{5});
  m.inputs["I2"] = Value("text with spaces");
  m.reply_to = 2;
  m.epoch = 4;
  ForEachCodecRoundTrip(m, [&](const RunProgramMsg& p, const char* which) {
    EXPECT_EQ(p.instance, m.instance) << which;
    EXPECT_EQ(p.step, m.step) << which;
    EXPECT_EQ(p.program, m.program) << which;
    EXPECT_EQ(p.attempt, m.attempt) << which;
    EXPECT_EQ(p.compensation, m.compensation) << which;
    EXPECT_DOUBLE_EQ(p.cost_fraction, m.cost_fraction) << which;
    EXPECT_EQ(p.nominal_cost, m.nominal_cost) << which;
    EXPECT_EQ(p.designated, m.designated) << which;
    EXPECT_EQ(p.inputs, m.inputs) << which;
    EXPECT_EQ(p.reply_to, m.reply_to) << which;
    EXPECT_EQ(p.epoch, m.epoch) << which;
  });
  // Off-grid fractions quantize to the same ppm value in both codecs.
  RunProgramMsg off = m;
  off.cost_fraction = 1.0 / 3.0;
  std::string kv_bytes, bin_bytes;
  {
    ScopedPayloadCodec guard(PayloadCodec::kKv);
    kv_bytes = off.Serialize();
  }
  {
    ScopedPayloadCodec guard(PayloadCodec::kBinary);
    bin_bytes = off.Serialize();
  }
  Result<RunProgramMsg> from_kv = RunProgramMsg::Parse(kv_bytes);
  Result<RunProgramMsg> from_bin = RunProgramMsg::Parse(bin_bytes);
  ASSERT_TRUE(from_kv.ok() && from_bin.ok());
  EXPECT_DOUBLE_EQ(from_kv.value().cost_fraction,
                   from_bin.value().cost_fraction);
}

TEST(WireCodec, RunProgramReply) {
  RunProgramReplyMsg m;
  m.instance = {"WF", 6};
  m.step = 3;
  m.ack_only = false;
  m.success = true;
  m.compensation = true;
  m.cost = 450;
  m.epoch = 4;
  m.agent_load = 7;
  m.responder = 12;
  m.outputs["O1"] = Value(3.5);
  m.outputs["O2"] = Value();
  ForEachCodecRoundTrip(m,
                        [&](const RunProgramReplyMsg& p, const char* which) {
                          EXPECT_EQ(p.instance, m.instance) << which;
                          EXPECT_EQ(p.step, m.step) << which;
                          EXPECT_EQ(p.ack_only, m.ack_only) << which;
                          EXPECT_EQ(p.success, m.success) << which;
                          EXPECT_EQ(p.compensation, m.compensation) << which;
                          EXPECT_EQ(p.cost, m.cost) << which;
                          EXPECT_EQ(p.epoch, m.epoch) << which;
                          EXPECT_EQ(p.agent_load, m.agent_load) << which;
                          EXPECT_EQ(p.responder, m.responder) << which;
                          EXPECT_EQ(p.outputs, m.outputs) << which;
                        });
}

TEST(WireCodec, PurgeInstances) {
  PurgeInstancesMsg m;
  m.committed.push_back({"WF1", 3});
  m.committed.push_back({"WF2", 9});
  m.committed.push_back({"WF with spaces", 1});
  ForEachCodecRoundTrip(m,
                        [&](const PurgeInstancesMsg& p, const char* which) {
                          EXPECT_EQ(p.committed, m.committed) << which;
                        });
  PurgeInstancesMsg empty;
  ForEachCodecRoundTrip(empty,
                        [&](const PurgeInstancesMsg& p, const char* which) {
                          EXPECT_TRUE(p.committed.empty()) << which;
                        });
}

// Randomized sweep: WorkflowStart with random inputs is the richest map
// carrier; serialize under each codec and cross-check the parses agree
// with each other (not just with the original).
TEST(WireCodec, RandomizedStartMessagesAgreeAcrossCodecs) {
  Rng rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    WorkflowStartMsg m;
    m.instance.workflow = "WF" + std::to_string(rng.Uniform(0, 50));
    m.instance.number = rng.Uniform(1, 1'000'000'000);
    if (rng.Bernoulli(0.5)) m.reply_to = static_cast<NodeId>(rng.Uniform(0, 99));
    int64_t inputs = rng.Uniform(0, 10);
    for (int64_t i = 0; i < inputs; ++i) {
      std::string key = "I" + std::to_string(i);
      switch (rng.Index(5)) {
        case 0: m.inputs[key] = Value(); break;
        case 1: m.inputs[key] = Value(rng.Bernoulli(0.5)); break;
        case 2:
          m.inputs[key] = Value(rng.Uniform(-1'000'000'000, 1'000'000'000));
          break;
        case 3: m.inputs[key] = Value(rng.NextDouble() * 1e9 - 5e8); break;
        default: {
          std::string s;
          int64_t length = rng.Uniform(0, 40);
          for (int64_t c = 0; c < length; ++c) {
            const char alphabet[] = "abz019 ;,=\"\\\n\t{}\x01\x7f";
            s += alphabet[rng.Index(sizeof(alphabet) - 1)];
          }
          m.inputs[key] = Value(s);
        }
      }
    }
    if (rng.Bernoulli(0.4)) {
      m.ro_links.push_back({{"WFo", rng.Uniform(1, 9)},
                            static_cast<StepId>(rng.Uniform(1, 9)),
                            static_cast<StepId>(rng.Uniform(1, 9)),
                            rng.Bernoulli(0.5)});
    }
    if (rng.Bernoulli(0.3)) {
      m.parent = {"WFp", rng.Uniform(1, 99)};
      m.parent_step = static_cast<StepId>(rng.Uniform(1, 30));
    }
    std::string kv_bytes, bin_bytes;
    {
      ScopedPayloadCodec guard(PayloadCodec::kKv);
      kv_bytes = m.Serialize();
    }
    {
      ScopedPayloadCodec guard(PayloadCodec::kBinary);
      bin_bytes = m.Serialize();
    }
    Result<WorkflowStartMsg> from_kv = WorkflowStartMsg::Parse(kv_bytes);
    Result<WorkflowStartMsg> from_bin = WorkflowStartMsg::Parse(bin_bytes);
    ASSERT_TRUE(from_kv.ok()) << from_kv.status().ToString();
    ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
    EXPECT_EQ(from_kv.value().instance, from_bin.value().instance);
    EXPECT_EQ(from_kv.value().inputs, from_bin.value().inputs);
    EXPECT_EQ(from_kv.value().reply_to, from_bin.value().reply_to);
    EXPECT_EQ(from_kv.value().ro_links.size(), from_bin.value().ro_links.size());
    EXPECT_EQ(from_kv.value().parent, from_bin.value().parent);
    EXPECT_EQ(from_kv.value().parent_step, from_bin.value().parent_step);
    EXPECT_EQ(from_bin.value().inputs, m.inputs);
  }
}

}  // namespace
}  // namespace crew::runtime
