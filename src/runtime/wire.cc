#include "runtime/wire.h"

#include "common/strings.h"
#include "runtime/kv.h"

namespace crew::runtime {
namespace {

void WriteInstance(KvWriter* w, const InstanceId& instance) {
  w->Add("wf", instance.workflow);
  w->AddInt("inst", instance.number);
}

Status ReadInstance(const KvReader& r, InstanceId* instance) {
  Result<std::string> wf = r.GetRequired("wf");
  if (!wf.ok()) return wf.status();
  instance->workflow = std::move(wf).value();
  Result<int64_t> number = r.GetInt("inst");
  if (!number.ok()) return number.status();
  instance->number = number.value();
  return Status::OK();
}

void WriteDataMap(KvWriter* w, const std::string& prefix,
                  const std::map<std::string, Value>& data) {
  for (const auto& [name, value] : data) {
    w->Add(prefix + name, value.ToString());
  }
}

Status ReadDataMap(const KvReader& r, const std::string& prefix,
                   std::map<std::string, Value>* data) {
  for (const auto& [key, raw] : r.entries()) {
    if (!StartsWith(key, prefix)) continue;
    Result<Value> v = Value::Parse(raw);
    if (!v.ok()) return v.status();
    (*data)[key.substr(prefix.size())] = std::move(v).value();
  }
  return Status::OK();
}

}  // namespace

const char* WorkflowStateName(WorkflowState state) {
  switch (state) {
    case WorkflowState::kUnknown: return "unknown";
    case WorkflowState::kExecuting: return "executing";
    case WorkflowState::kCommitted: return "committed";
    case WorkflowState::kAborted: return "aborted";
  }
  return "?";
}

WorkflowState ParseWorkflowState(const std::string& name) {
  if (name == "executing") return WorkflowState::kExecuting;
  if (name == "committed") return WorkflowState::kCommitted;
  if (name == "aborted") return WorkflowState::kAborted;
  return WorkflowState::kUnknown;
}

const char* StepRunStateName(StepRunState state) {
  switch (state) {
    case StepRunState::kUnknown: return "unknown";
    case StepRunState::kExecuting: return "executing";
    case StepRunState::kDone: return "done";
    case StepRunState::kFailed: return "failed";
    case StepRunState::kCompensated: return "compensated";
  }
  return "?";
}

StepRunState ParseStepRunState(const std::string& name) {
  if (name == "executing") return StepRunState::kExecuting;
  if (name == "done") return StepRunState::kDone;
  if (name == "failed") return StepRunState::kFailed;
  if (name == "compensated") return StepRunState::kCompensated;
  return StepRunState::kUnknown;
}

// ---- WorkflowStartMsg ----

std::string WorkflowStartMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("reply_to", reply_to);
  WriteDataMap(&w, "i.", inputs);
  for (const RoLink& link : ro_links) {
    w.Add(link.leading ? "ro_lead" : "ro_lag", link.Serialize());
  }
  for (const RdLink& link : rd_links) {
    w.Add("rd", link.Serialize());
  }
  if (!parent.workflow.empty()) {
    w.Add("parent_wf", parent.workflow);
    w.AddInt("parent_inst", parent.number);
    w.AddInt("parent_step", parent_step);
  }
  return w.Finish();
}

Result<WorkflowStartMsg> WorkflowStartMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowStartMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  m.reply_to = static_cast<NodeId>(
      reader.value().GetIntOr("reply_to", kInvalidNode));
  CREW_RETURN_IF_ERROR(ReadDataMap(reader.value(), "i.", &m.inputs));
  for (const auto& [key, raw] : reader.value().entries()) {
    if (key == "ro_lead" || key == "ro_lag") {
      Result<RoLink> link = RoLink::Parse(raw, key == "ro_lead");
      if (!link.ok()) return link.status();
      m.ro_links.push_back(std::move(link).value());
    } else if (key == "rd") {
      Result<RdLink> link = RdLink::Parse(raw);
      if (!link.ok()) return link.status();
      m.rd_links.push_back(std::move(link).value());
    }
  }
  m.parent.workflow = reader.value().Get("parent_wf").value_or("");
  m.parent.number = reader.value().GetIntOr("parent_inst", 0);
  m.parent_step = static_cast<StepId>(
      reader.value().GetIntOr("parent_step", kInvalidStep));
  return m;
}

// ---- WorkflowChangeInputsMsg ----

std::string WorkflowChangeInputsMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("origin", origin_step);
  WriteDataMap(&w, "i.", new_inputs);
  return w.Finish();
}

Result<WorkflowChangeInputsMsg> WorkflowChangeInputsMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowChangeInputsMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  m.origin_step = static_cast<StepId>(
      reader.value().GetIntOr("origin", kInvalidStep));
  CREW_RETURN_IF_ERROR(ReadDataMap(reader.value(), "i.", &m.new_inputs));
  return m;
}

// ---- WorkflowAbortMsg ----

std::string WorkflowAbortMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  return w.Finish();
}

Result<WorkflowAbortMsg> WorkflowAbortMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowAbortMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  return m;
}

// ---- WorkflowStatusMsg ----

std::string WorkflowStatusMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("reply_to", reply_to);
  return w.Finish();
}

Result<WorkflowStatusMsg> WorkflowStatusMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowStatusMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  m.reply_to = static_cast<NodeId>(
      reader.value().GetIntOr("reply_to", kInvalidNode));
  return m;
}

// ---- WorkflowStatusReplyMsg ----

std::string WorkflowStatusReplyMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.Add("state", WorkflowStateName(state));
  return w.Finish();
}

Result<WorkflowStatusReplyMsg> WorkflowStatusReplyMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowStatusReplyMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<std::string> state = reader.value().GetRequired("state");
  if (!state.ok()) return state.status();
  m.state = ParseWorkflowState(state.value());
  return m;
}

// ---- StepExecuteMsg ----

Result<StepExecuteMsg> StepExecuteMsg::Parse(const std::string& payload) {
  Result<WorkflowPacket> packet = WorkflowPacket::Parse(payload);
  if (!packet.ok()) return packet.status();
  return StepExecuteMsg{std::move(packet).value()};
}

// ---- StepCompensateMsg ----

std::string StepCompensateMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.AddInt("epoch", epoch);
  return w.Finish();
}

Result<StepCompensateMsg> StepCompensateMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StepCompensateMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  m.epoch = reader.value().GetIntOr("epoch", 0);
  return m;
}

// ---- StepCompletedMsg ----

std::string StepCompletedMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.AddInt("epoch", epoch);
  WriteDataMap(&w, "r.", results);
  return w.Finish();
}

Result<StepCompletedMsg> StepCompletedMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StepCompletedMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  m.epoch = reader.value().GetIntOr("epoch", 0);
  CREW_RETURN_IF_ERROR(ReadDataMap(reader.value(), "r.", &m.results));
  return m;
}

// ---- StepStatusMsg ----

std::string StepStatusMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.AddInt("reply_to", reply_to);
  return w.Finish();
}

Result<StepStatusMsg> StepStatusMsg::Parse(const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StepStatusMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  m.reply_to = static_cast<NodeId>(
      reader.value().GetIntOr("reply_to", kInvalidNode));
  return m;
}

// ---- StepStatusReplyMsg ----

std::string StepStatusReplyMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.Add("state", StepRunStateName(state));
  w.AddInt("responder", responder);
  return w.Finish();
}

Result<StepStatusReplyMsg> StepStatusReplyMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StepStatusReplyMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  Result<std::string> state = reader.value().GetRequired("state");
  if (!state.ok()) return state.status();
  m.state = ParseStepRunState(state.value());
  m.responder = static_cast<NodeId>(
      reader.value().GetIntOr("responder", kInvalidNode));
  return m;
}

// ---- WorkflowRollbackMsg ----

std::string WorkflowRollbackMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("origin", origin_step);
  w.AddInt("new_epoch", new_epoch);
  // Embed the packet with escaped newlines.
  std::string inner = state.Serialize();
  std::string escaped;
  for (char c : inner) {
    if (c == '\n') {
      escaped += "\\n";
    } else if (c == '\\') {
      escaped += "\\\\";
    } else {
      escaped += c;
    }
  }
  w.Add("state", escaped);
  return w.Finish();
}

Result<WorkflowRollbackMsg> WorkflowRollbackMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowRollbackMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> origin = reader.value().GetInt("origin");
  if (!origin.ok()) return origin.status();
  m.origin_step = static_cast<StepId>(origin.value());
  m.new_epoch = reader.value().GetIntOr("new_epoch", 0);
  Result<std::string> escaped = reader.value().GetRequired("state");
  if (!escaped.ok()) return escaped.status();
  std::string inner;
  const std::string& e = escaped.value();
  for (size_t i = 0; i < e.size(); ++i) {
    if (e[i] == '\\' && i + 1 < e.size()) {
      ++i;
      inner += (e[i] == 'n') ? '\n' : e[i];
    } else {
      inner += e[i];
    }
  }
  Result<WorkflowPacket> packet = WorkflowPacket::Parse(inner);
  if (!packet.ok()) return packet.status();
  m.state = std::move(packet).value();
  return m;
}

// ---- HaltThreadMsg ----

std::string HaltThreadMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("origin", origin_step);
  w.AddInt("new_epoch", new_epoch);
  return w.Finish();
}

Result<HaltThreadMsg> HaltThreadMsg::Parse(const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  HaltThreadMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> origin = reader.value().GetInt("origin");
  if (!origin.ok()) return origin.status();
  m.origin_step = static_cast<StepId>(origin.value());
  m.new_epoch = reader.value().GetIntOr("new_epoch", 0);
  return m;
}

// ---- CompensateSetMsg ----

std::string CompensateSetMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("origin", origin_step);
  w.AddInt("epoch", epoch);
  w.AddInt("resume_agent", resume_agent);
  for (StepId s : remaining) w.AddInt("s", s);
  std::string inner = resume.Serialize();
  std::string escaped;
  for (char c : inner) {
    if (c == '\n') {
      escaped += "\\n";
    } else if (c == '\\') {
      escaped += "\\\\";
    } else {
      escaped += c;
    }
  }
  w.Add("resume", escaped);
  return w.Finish();
}

Result<CompensateSetMsg> CompensateSetMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  CompensateSetMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> origin = reader.value().GetInt("origin");
  if (!origin.ok()) return origin.status();
  m.origin_step = static_cast<StepId>(origin.value());
  m.epoch = reader.value().GetIntOr("epoch", 0);
  m.resume_agent = static_cast<NodeId>(
      reader.value().GetIntOr("resume_agent", kInvalidNode));
  for (const std::string& raw : reader.value().GetAll("s")) {
    m.remaining.push_back(
        static_cast<StepId>(strtol(raw.c_str(), nullptr, 10)));
  }
  Result<std::string> escaped = reader.value().GetRequired("resume");
  if (!escaped.ok()) return escaped.status();
  std::string inner;
  const std::string& e = escaped.value();
  for (size_t i = 0; i < e.size(); ++i) {
    if (e[i] == '\\' && i + 1 < e.size()) {
      ++i;
      inner += (e[i] == 'n') ? '\n' : e[i];
    } else {
      inner += e[i];
    }
  }
  Result<WorkflowPacket> packet = WorkflowPacket::Parse(inner);
  if (!packet.ok()) return packet.status();
  m.resume = std::move(packet).value();
  return m;
}

// ---- CompensateThreadMsg ----

std::string CompensateThreadMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.AddInt("until", until_join);
  w.AddInt("epoch", epoch);
  return w.Finish();
}

Result<CompensateThreadMsg> CompensateThreadMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  CompensateThreadMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  m.until_join =
      static_cast<StepId>(reader.value().GetIntOr("until", kInvalidStep));
  m.epoch = reader.value().GetIntOr("epoch", 0);
  return m;
}

// ---- StateInformationMsg ----

std::string StateInformationMsg::Serialize() const {
  KvWriter w;
  w.AddInt("reply_to", reply_to);
  w.Add("wf", instance.workflow);
  w.AddInt("inst", instance.number);
  w.AddInt("step", step);
  return w.Finish();
}

Result<StateInformationMsg> StateInformationMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StateInformationMsg m;
  m.reply_to = static_cast<NodeId>(
      reader.value().GetIntOr("reply_to", kInvalidNode));
  m.instance.workflow = reader.value().Get("wf").value_or("");
  m.instance.number = reader.value().GetIntOr("inst", 0);
  m.step = static_cast<StepId>(reader.value().GetIntOr("step", 0));
  return m;
}

// ---- StateInformationReplyMsg ----

std::string StateInformationReplyMsg::Serialize() const {
  KvWriter w;
  w.AddInt("responder", responder);
  w.AddInt("load", load);
  w.Add("wf", instance.workflow);
  w.AddInt("inst", instance.number);
  w.AddInt("step", step);
  return w.Finish();
}

Result<StateInformationReplyMsg> StateInformationReplyMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StateInformationReplyMsg m;
  m.responder = static_cast<NodeId>(
      reader.value().GetIntOr("responder", kInvalidNode));
  m.load = reader.value().GetIntOr("load", 0);
  m.instance.workflow = reader.value().Get("wf").value_or("");
  m.instance.number = reader.value().GetIntOr("inst", 0);
  m.step = static_cast<StepId>(reader.value().GetIntOr("step", 0));
  return m;
}

// ---- AddRuleMsg ----

std::string AddRuleMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.Add("rule", rule_id);
  for (const std::string& token : trigger_events) w.Add("ev", token);
  if (!condition_source.empty()) w.Add("cond", condition_source);
  w.AddInt("action_step", action_step);
  return w.Finish();
}

Result<AddRuleMsg> AddRuleMsg::Parse(const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  AddRuleMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<std::string> rule = reader.value().GetRequired("rule");
  if (!rule.ok()) return rule.status();
  m.rule_id = std::move(rule).value();
  m.trigger_events = reader.value().GetAll("ev");
  m.condition_source = reader.value().Get("cond").value_or("");
  m.action_step =
      static_cast<StepId>(reader.value().GetIntOr("action_step", 0));
  return m;
}

// ---- AddEventMsg ----

std::string AddEventMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.Add("event", event_token);
  return w.Finish();
}

Result<AddEventMsg> AddEventMsg::Parse(const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  AddEventMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<std::string> event = reader.value().GetRequired("event");
  if (!event.ok()) return event.status();
  m.event_token = std::move(event).value();
  return m;
}

// ---- AddPreconditionMsg ----

std::string AddPreconditionMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.Add("rule", rule_id);
  w.Add("event", event_token);
  return w.Finish();
}

Result<AddPreconditionMsg> AddPreconditionMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  AddPreconditionMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<std::string> rule = reader.value().GetRequired("rule");
  if (!rule.ok()) return rule.status();
  m.rule_id = std::move(rule).value();
  Result<std::string> event = reader.value().GetRequired("event");
  if (!event.ok()) return event.status();
  m.event_token = std::move(event).value();
  return m;
}

// ---- RunProgramMsg ----

std::string RunProgramMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.Add("program", program);
  w.AddInt("attempt", attempt);
  w.AddInt("compensation", compensation ? 1 : 0);
  w.AddInt("cost_fraction_ppm",
           static_cast<int64_t>(cost_fraction * 1'000'000));
  w.AddInt("nominal_cost", nominal_cost);
  w.AddInt("designated", designated);
  w.AddInt("reply_to", reply_to);
  w.AddInt("epoch", epoch);
  WriteDataMap(&w, "i.", inputs);
  return w.Finish();
}

Result<RunProgramMsg> RunProgramMsg::Parse(const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  RunProgramMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  Result<std::string> program = reader.value().GetRequired("program");
  if (!program.ok()) return program.status();
  m.program = std::move(program).value();
  m.attempt = static_cast<int>(reader.value().GetIntOr("attempt", 1));
  m.compensation = reader.value().GetIntOr("compensation", 0) != 0;
  m.cost_fraction =
      static_cast<double>(reader.value().GetIntOr("cost_fraction_ppm",
                                                  1'000'000)) /
      1'000'000.0;
  m.nominal_cost = reader.value().GetIntOr("nominal_cost", 0);
  m.designated = static_cast<NodeId>(
      reader.value().GetIntOr("designated", kInvalidNode));
  m.reply_to = static_cast<NodeId>(
      reader.value().GetIntOr("reply_to", kInvalidNode));
  m.epoch = reader.value().GetIntOr("epoch", 0);
  CREW_RETURN_IF_ERROR(ReadDataMap(reader.value(), "i.", &m.inputs));
  return m;
}

// ---- RunProgramReplyMsg ----

std::string RunProgramReplyMsg::Serialize() const {
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.AddInt("ack_only", ack_only ? 1 : 0);
  w.AddInt("success", success ? 1 : 0);
  w.AddInt("compensation", compensation ? 1 : 0);
  w.AddInt("cost", cost);
  w.AddInt("epoch", epoch);
  w.AddInt("agent_load", agent_load);
  w.AddInt("responder", responder);
  WriteDataMap(&w, "o.", outputs);
  return w.Finish();
}

Result<RunProgramReplyMsg> RunProgramReplyMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  RunProgramReplyMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  m.ack_only = reader.value().GetIntOr("ack_only", 0) != 0;
  m.success = reader.value().GetIntOr("success", 0) != 0;
  m.compensation = reader.value().GetIntOr("compensation", 0) != 0;
  m.cost = reader.value().GetIntOr("cost", 0);
  m.epoch = reader.value().GetIntOr("epoch", 0);
  m.agent_load = reader.value().GetIntOr("agent_load", 0);
  m.responder = static_cast<NodeId>(
      reader.value().GetIntOr("responder", kInvalidNode));
  CREW_RETURN_IF_ERROR(ReadDataMap(reader.value(), "o.", &m.outputs));
  return m;
}

// ---- PurgeInstancesMsg ----

std::string PurgeInstancesMsg::Serialize() const {
  KvWriter w;
  for (const InstanceId& id : committed) {
    w.Add("c", id.workflow + "#" + std::to_string(id.number));
  }
  return w.Finish();
}

Result<PurgeInstancesMsg> PurgeInstancesMsg::Parse(
    const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  PurgeInstancesMsg m;
  for (const std::string& raw : reader.value().GetAll("c")) {
    size_t hash = raw.rfind('#');
    if (hash == std::string::npos) {
      return Status::Corruption("bad committed id: " + raw);
    }
    InstanceId id;
    id.workflow = raw.substr(0, hash);
    id.number = strtoll(raw.c_str() + hash + 1, nullptr, 10);
    m.committed.push_back(std::move(id));
  }
  return m;
}

}  // namespace crew::runtime
