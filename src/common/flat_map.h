#ifndef CREW_COMMON_FLAT_MAP_H_
#define CREW_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace crew {

/// Sorted-vector map for wire-facing containers (packet data tables,
/// executed-by maps). The codec hot paths never need node-based
/// iterator stability: they fill a table once from already-sorted wire
/// input and then scan it in order. A contiguous pair vector turns that
/// fill into amortized O(1) appends (no per-entry node allocation) and
/// the scans into linear walks, which is where node-based std::map was
/// losing most of the packet serialize/parse budget.
///
/// Lookups are binary search, and keys are heterogeneous (probe a
/// std::string-keyed map with a string_view or literal without
/// materializing a std::string). Inserting a key that is not greater
/// than the current maximum falls back to an O(n) shifted insert, so
/// this type is for small or build-in-order tables, not churny ones.
/// `Container` is any vector-shaped sequence of std::pair<K, V>
/// (std::vector by default; SmallVector for hot-path tables that want
/// inline storage).
template <typename K, typename V,
          typename Container = std::vector<std::pair<K, V>>>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename Container::iterator;
  using const_iterator = typename Container::const_iterator;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  void reserve(size_t n) { entries_.reserve(n); }

  template <typename Key>
  iterator lower_bound(const Key& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }
  template <typename Key>
  const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }

  template <typename Key>
  iterator find(const Key& key) {
    iterator it = lower_bound(key);
    return it != entries_.end() && !(key < it->first) ? it : entries_.end();
  }
  template <typename Key>
  const_iterator find(const Key& key) const {
    const_iterator it = lower_bound(key);
    return it != entries_.end() && !(key < it->first) ? it : entries_.end();
  }

  template <typename Key>
  size_t count(const Key& key) const {
    return find(key) == entries_.end() ? 0 : 1;
  }

  /// std::map semantics: default-constructs the value on first sight.
  /// Appending in key order hits the O(1) fast path.
  template <typename Key>
  V& operator[](const Key& key) {
    if (entries_.empty() || entries_.back().first < key) {
      entries_.emplace_back(K(key), V());
      return entries_.back().second;
    }
    iterator it = lower_bound(key);
    if (it != entries_.end() && !(key < it->first)) return it->second;
    return entries_.emplace(it, K(key), V())->second;
  }

  template <typename Key>
  const V& at(const Key& key) const {
    const_iterator it = find(key);
    if (it == entries_.end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }

  /// Bulk-fill from a sorted-unique range (e.g. a std::map snapshot).
  template <typename It>
  void assign(It first, It last) {
    entries_.assign(first, last);
  }

  bool operator==(const FlatMap& o) const { return entries_ == o.entries_; }
  bool operator!=(const FlatMap& o) const { return !(*this == o); }

 private:
  Container entries_;
};

}  // namespace crew

#endif  // CREW_COMMON_FLAT_MAP_H_
