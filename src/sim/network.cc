#include "sim/network.h"

#include <utility>

#include "common/logging.h"

namespace crew::sim {

void Network::Register(NodeId id, MessageHandler* handler) {
  handlers_[id] = handler;
}

void Network::SetNodeDown(NodeId id, bool down) {
  down_[id] = down;
  if (tracer_->enabled()) {
    tracer_->Instant(obs::SpanKind::kNode, id, InstanceId{}, kInvalidStep,
                     down ? "node.down" : "node.up");
  }
  if (!down) {
    // Recovery: flush parked messages in arrival order.
    auto it = parked_.find(id);
    if (it == parked_.end()) return;
    std::vector<std::pair<Time, Message>> batch = std::move(it->second);
    parked_.erase(it);
    for (auto& [sent, m] : batch) {
      queue_->ScheduleAfter(latency_, [this, sent = sent, m = std::move(m)]() {
        Deliver(m, sent);
      });
    }
  }
}

bool Network::IsNodeDown(NodeId id) const {
  auto it = down_.find(id);
  return it != down_.end() && it->second;
}

Status Network::Send(Message message) {
  auto it = handlers_.find(message.to);
  if (it == handlers_.end()) {
    return Status::NotFound("no node registered with id " +
                            std::to_string(message.to));
  }
  metrics_->CountMessage(message.from, message.to, message.category,
                         message.payload.size(), message.type);
  Time sent = queue_->now();
  queue_->ScheduleAfter(latency_, [this, sent, m = std::move(message)]() {
    Deliver(m, sent);
  });
  return Status::OK();
}

void Network::Deliver(const Message& message, Time sent) {
  if (IsNodeDown(message.to)) {
    parked_[message.to].emplace_back(sent, message);
    return;
  }
  auto it = handlers_.find(message.to);
  if (it == handlers_.end()) {
    CREW_LOG(Warn) << "dropping message to vanished node " << message.to;
    return;
  }
  if (tracer_->enabled()) {
    // Record before dispatch so the message span precedes any spans the
    // handler emits at the same tick.
    tracer_->Complete(obs::SpanKind::kMessage, message.to, InstanceId{},
                      kInvalidStep, "msg:" + message.type, sent,
                      queue_->now() - sent,
                      static_cast<int>(message.category),
                      std::to_string(message.from) + "->" +
                          std::to_string(message.to));
  }
  it->second->HandleMessage(message);
}

}  // namespace crew::sim
