#include "runtime/ocr.h"

#include <cmath>

#include "expr/eval.h"

namespace crew::runtime {

const char* OcrDecisionName(OcrDecision decision) {
  switch (decision) {
    case OcrDecision::kFirstExecution: return "first-execution";
    case OcrDecision::kReuse: return "reuse";
    case OcrDecision::kPartialCompIncrReexec: return "partial+incremental";
    case OcrDecision::kFullCompReexec: return "full-comp+reexec";
  }
  return "?";
}

OcrDecision DecideOcr(const model::Step& step, const InstanceState& state) {
  const StepRecord* record = state.FindStepRecord(step.id);
  if (record == nullptr || record->state != StepRunState::kDone) {
    // Never completed here (or already compensated): plain execution.
    return OcrDecision::kFirstExecution;
  }

  expr::FunctionEnvironment env = state.OcrEnv(step.id);

  // Figure 5: "check the compensation and re-execution condition first".
  // A null condition means the designer gave no reuse opportunity: the
  // step always re-executes.
  if (step.ocr.reexec_condition) {
    if (!expr::EvaluateCondition(step.ocr.reexec_condition, env)) {
      return OcrDecision::kReuse;
    }
  }

  const bool partial_configured =
      step.ocr.partial_compensation_fraction < 1.0 ||
      step.ocr.incremental_reexec_fraction < 1.0;
  if (partial_configured) {
    if (!step.ocr.partial_applicable_condition ||
        expr::EvaluateCondition(step.ocr.partial_applicable_condition,
                                env)) {
      return OcrDecision::kPartialCompIncrReexec;
    }
  }
  return OcrDecision::kFullCompReexec;
}

OcrCost CostOf(const model::Step& step, OcrDecision decision) {
  OcrCost cost;
  const double nominal = static_cast<double>(step.cost);
  switch (decision) {
    case OcrDecision::kFirstExecution:
      cost.reexecution = step.cost;
      break;
    case OcrDecision::kReuse:
      // Only the condition check, charged as navigation by the caller.
      break;
    case OcrDecision::kPartialCompIncrReexec:
      cost.compensation = static_cast<int64_t>(
          std::llround(nominal * step.ocr.partial_compensation_fraction));
      cost.reexecution = static_cast<int64_t>(
          std::llround(nominal * step.ocr.incremental_reexec_fraction));
      break;
    case OcrDecision::kFullCompReexec:
      cost.compensation = step.cost;
      cost.reexecution = step.cost;
      break;
  }
  return cost;
}

}  // namespace crew::runtime
