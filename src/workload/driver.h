#ifndef CREW_WORKLOAD_DRIVER_H_
#define CREW_WORKLOAD_DRIVER_H_

#include <string>

#include "sim/metrics.h"
#include "workload/generator.h"
#include "workload/params.h"

namespace crew::obs {
class Tracer;
}  // namespace crew::obs

namespace crew::workload {

/// Which control architecture a run exercises (Figure 6).
enum class Architecture { kCentral, kParallel, kDistributed };

const char* ArchitectureName(Architecture architecture);

/// Aggregated outcome of one workload run.
struct RunResult {
  Architecture architecture = Architecture::kCentral;
  int64_t started = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t sim_ticks = 0;
  sim::Metrics metrics;  ///< full per-category message/load counters

  double instances() const {
    return started > 0 ? static_cast<double>(started) : 1.0;
  }
  /// Messages of a category per instance.
  double MessagesPerInstance(sim::MsgCategory category) const {
    return static_cast<double>(metrics.MessagesIn(category)) / instances();
  }
  /// Load of a category at the *maximum-loaded* node, per instance,
  /// normalized by l (the paper's "Load at Engine" unit).
  double NormalizedMaxLoad(sim::LoadCategory category, int64_t l) const;
  /// Same but total across nodes (used to sanity-check conservation).
  double NormalizedTotalLoad(sim::LoadCategory category, int64_t l) const;

  std::string Describe() const;
};

/// Runs the Table 3 workload against one architecture and reports the
/// measured per-instance loads and message counts. Deterministic for a
/// given Params::seed. When `tracer` is non-null the simulator records
/// the run's spans into it (virtual-time-stamped; see obs/trace.h).
RunResult RunWorkload(const Params& params, Architecture architecture,
                      obs::Tracer* tracer = nullptr);

}  // namespace crew::workload

#endif  // CREW_WORKLOAD_DRIVER_H_
