#include "model/schema.h"

#include <sstream>

namespace crew::model {

StepId Schema::FindStepByName(const std::string& name) const {
  for (const Step& s : steps_) {
    if (s.name == name) return s.id;
  }
  return kInvalidStep;
}

std::string Schema::Describe() const {
  std::ostringstream os;
  os << "workflow " << name_ << " (v" << version_ << "), " << steps_.size()
     << " steps, start=S" << start_step_ << "\n";
  for (const Step& s : steps_) {
    os << "  S" << s.id << " '" << s.name << "'";
    if (s.kind == StepKind::kSubWorkflow) {
      os << " sub-workflow=" << s.sub_workflow;
    } else {
      os << " program=" << s.program;
    }
    os << (s.access == AccessKind::kUpdate ? " update" : " query");
    if (s.join == JoinKind::kAnd) os << " join=and";
    if (s.join == JoinKind::kOr) os << " join=or";
    if (s.failure.rollback_to != kInvalidStep) {
      os << " on-fail->S" << s.failure.rollback_to;
    }
    os << "\n";
  }
  for (const ControlArc& a : control_arcs_) {
    os << "  S" << a.from << " -> S" << a.to;
    if (a.condition) os << " when " << a.condition->ToString();
    if (a.is_else) os << " (else)";
    if (a.is_back_edge) os << " (back-edge)";
    os << "\n";
  }
  for (const CompDepSet& set : comp_dep_sets_) {
    os << "  comp-dep-set:";
    for (StepId id : set.steps) os << " S" << id;
    os << "\n";
  }
  for (const auto& group : terminal_groups_) {
    os << "  terminal-group:";
    for (StepId id : group) os << " S" << id;
    os << "\n";
  }
  return os.str();
}

}  // namespace crew::model
