#ifndef CREW_RULES_ENGINE_H_
#define CREW_RULES_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "expr/ast.h"
#include "expr/eval.h"
#include "rules/token.h"

namespace crew::rules {

/// What a fired rule asks the runtime to do. The rule engine itself is
/// action-agnostic; runtimes interpret these descriptors.
enum class ActionKind {
  kExecuteStep,
  kCompensateStep,
  kCommitWorkflow,
  kAbortWorkflow,
};

struct RuleAction {
  ActionKind kind = ActionKind::kExecuteStep;
  StepId step = kInvalidStep;
};

/// An Event-Condition-Action rule instance (§3): fires when every trigger
/// event has occurred (and is currently valid) and the condition holds.
/// Trigger events are interned EventTokens (see rules/token.h).
struct Rule {
  std::string id;                    ///< unique within one engine
  std::vector<EventToken> events;    ///< ALL must be valid to fire
  expr::NodePtr condition;           ///< null => unconditional
  RuleAction action;
};

/// Per-instance event table + rule store implementing the paper's
/// general-rule and pending-rule tables, with the three implementation
/// primitives AddRule() / AddEvent() (via Post) / AddPrecondition().
///
/// Firing semantics:
///  - Every Post() stamps the event with a fresh sequence number and
///    marks it valid.
///  - Invalidate() marks an event no-longer-occurred; pending progress of
///    rules that depend on it is discarded (the paper's rollback step).
///  - A rule is *fireable* when every trigger event is valid, the newest
///    trigger stamp exceeds the rule's last-fired stamp (so loop rules
///    re-fire on re-posted events, but a rule does not re-fire
///    spuriously), and its condition evaluates true.
///
/// Dispatch is indexed rather than scanned: rules live in a dense vector,
/// an inverted index maps each event to the rules it triggers, and every
/// mutation that can newly enable a rule (Post / AddRule /
/// AddPrecondition / ResetFiringIf) marks only the dependent rules dirty.
/// CollectFireable() evaluates the dirty candidates in rule-id order —
/// the same order the original full scan produced — so the fired-action
/// sequence is bit-identical to the scanning engine's. A candidate whose
/// trigger events are satisfied but whose condition is false stays dirty
/// (the environment can change between calls without a new event); one
/// that is missing an event or a fresh stamp is dropped, because only a
/// mutation that re-marks it can make it fireable again.
class RuleEngine {
 public:
  /// AddRule() primitive. Rejects duplicate ids.
  Status AddRule(Rule rule);

  /// Removes a rule; returns false if absent.
  bool RemoveRule(std::string_view rule_id);

  /// AddPrecondition() primitive: appends an extra trigger event to an
  /// existing rule, so the step it guards cannot fire until that event
  /// arrives (used for relative ordering / mutual exclusion).
  Status AddPrecondition(std::string_view rule_id, EventToken extra_event);
  Status AddPrecondition(std::string_view rule_id,
                         std::string_view extra_event);

  /// AddEvent() primitive: posts an event occurrence.
  void Post(EventToken token);
  void Post(std::string_view token);

  /// Invalidates an occurred event (rollback). No-op if never posted.
  void Invalidate(EventToken token);
  void Invalidate(std::string_view token);

  bool Occurred(EventToken token) const;
  bool Occurred(std::string_view token) const;

  /// Returns the actions of every rule that can fire now, in rule-id
  /// order, marking them fired. Conditions are evaluated against `env`.
  /// Call after each Post()/AddRule()/AddPrecondition() batch.
  std::vector<RuleAction> CollectFireable(const expr::Environment& env);

  /// Rules that are waiting on at least one missing/invalid event —
  /// the paper's pending-rule table view, in rule-id order. Pairs of
  /// (rule id, missing event names).
  std::vector<std::pair<std::string, std::vector<std::string>>>
  PendingRules() const;

  /// Events a given rule still needs (empty if all triggers are valid).
  std::vector<std::string> MissingEvents(std::string_view rule_id) const;

  const Rule* FindRule(std::string_view rule_id) const;
  size_t num_rules() const { return rule_index_.size(); }

  /// Resets the fired marker of every rule matching `pred`, so it can
  /// fire again on its *existing* (still valid) trigger events. Used when
  /// a rollback re-enables the rules of downstream steps (§5.2).
  void ResetFiringIf(const std::function<bool(const Rule&)>& pred);

  /// Total number of rule firings (metrics).
  int64_t fire_count() const { return fire_count_; }

 private:
  struct EventState {
    bool valid = false;
    uint64_t stamp = 0;  // sequence of the latest Post
    /// Inverted index: slots of the rules triggered by this event. May
    /// hold tombstoned slots after RemoveRule; MarkDirty() skips them.
    std::vector<uint32_t> watchers;
  };
  struct RuleState {
    Rule rule;
    uint64_t last_fired_stamp = 0;
    bool alive = true;
    bool dirty = false;  // queued in dirty_
  };

  /// Outcome of evaluating one dirty candidate.
  enum class Readiness { kFire, kConditionFalse, kNotReady };

  /// Engine-local dense slot for `token`, created on first sight.
  uint32_t EventSlot(EventToken token);
  const EventState* FindEvent(EventToken token) const;
  void MarkDirty(uint32_t rule_slot);
  Readiness Evaluate(const RuleState& state, const expr::Environment& env,
                     uint64_t* newest_stamp) const;
  void AppendMissing(const RuleState& state,
                     std::vector<std::string>* missing) const;

  /// Dense rule store. Slots are stable for the engine's lifetime:
  /// RemoveRule tombstones (alive=false) and slots are never reused, so
  /// inverted-index entries stay valid.
  std::vector<RuleState> rules_;
  std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>>
      rule_index_;  // id -> slot (alive rules only)

  /// Event table, compacted to engine-local dense slots (global tokens
  /// are process-wide; one engine only touches a few of them).
  std::unordered_map<EventToken, uint32_t> event_index_;
  std::vector<EventState> events_;

  /// Candidate rules to evaluate at the next CollectFireable(), each at
  /// most once (RuleState::dirty guards duplicates).
  std::vector<uint32_t> dirty_;

  uint64_t next_stamp_ = 1;
  int64_t fire_count_ = 0;
};

}  // namespace crew::rules

#endif  // CREW_RULES_ENGINE_H_
