#ifndef CREW_RUNTIME_CODEC_H_
#define CREW_RUNTIME_CODEC_H_

#include <string_view>

#include "common/value.h"
#include "rules/token.h"
#include "runtime/binio.h"

namespace crew::runtime {

/// The codec seam: every typed payload (runtime/packet.h, runtime/wire.h)
/// Serialize()s in the process-wide active codec, and every Parse()
/// auto-detects the format from the first byte — binary payloads open
/// with kBinaryMagic, which can never begin a kv text payload (kv keys
/// are printable ASCII). Mixed-codec clusters, WAL records written by a
/// previous life under the other codec, and hand-written kv test
/// fixtures therefore all parse regardless of the active setting.
enum class PayloadCodec { kKv = 0, kBinary = 1 };

/// Process-wide active codec for Serialize(). Defaults to kBinary; the
/// kv text format remains as the debug/compat codec (--codec=kv).
void SetPayloadCodec(PayloadCodec codec);
PayloadCodec ActivePayloadCodec();

const char* PayloadCodecName(PayloadCodec codec);
/// Parses "kv" / "binary"; false on anything else.
bool ParsePayloadCodecName(std::string_view name, PayloadCodec* out);

/// RAII codec override for tests and benchmarks.
class ScopedPayloadCodec {
 public:
  explicit ScopedPayloadCodec(PayloadCodec codec)
      : prev_(ActivePayloadCodec()) {
    SetPayloadCodec(codec);
  }
  ~ScopedPayloadCodec() { SetPayloadCodec(prev_); }
  ScopedPayloadCodec(const ScopedPayloadCodec&) = delete;
  ScopedPayloadCodec& operator=(const ScopedPayloadCodec&) = delete;

 private:
  PayloadCodec prev_;
};

/// First byte of every binary payload. >= 0x80, so it cannot collide
/// with the first key character of a kv text payload.
inline constexpr unsigned char kBinaryMagic = 0xC2;

inline bool LooksBinary(std::string_view payload) {
  return !payload.empty() &&
         static_cast<unsigned char>(payload[0]) == kBinaryMagic;
}

/// Message ids: the byte after the magic. A Parse for type X rejects a
/// binary payload whose id is not X — cross-type payloads fail loudly
/// instead of field-misreading.
enum class BinMsgId : uint8_t {
  kPacket = 1,
  kWorkflowStart = 2,
  kWorkflowChangeInputs = 3,
  kWorkflowAbort = 4,
  kWorkflowStatus = 5,
  kWorkflowStatusReply = 6,
  kStepCompensate = 7,
  kStepCompleted = 8,
  kStepStatus = 9,
  kStepStatusReply = 10,
  kWorkflowRollback = 11,
  kHaltThread = 12,
  kCompensateSet = 13,
  kCompensateThread = 14,
  kStateInformation = 15,
  kStateInformationReply = 16,
  kAddRule = 17,
  kAddEvent = 18,
  kAddPrecondition = 19,
  kRunProgram = 20,
  kRunProgramReply = 21,
  kPurgeInstances = 22,
};

// ---- Value as a binary composite: [kind byte][payload] ----
// Kinds: 0 null, 1 false, 2 true, 3 int (zigzag varint), 4 double
// (fixed64), 5 string (length-prefixed bytes).

inline size_t ValueBound(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
    case Value::Kind::kBool:
      return 1;
    case Value::Kind::kInt:
      return 1 + kMaxVarintBytes;
    case Value::Kind::kDouble:
      return 1 + 8;
    case Value::Kind::kString:
      return 1 + BytesBound(v.AsString());
  }
  return 1;
}

inline void WriteValue(BinWriter& w, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      w.U8(0);
      break;
    case Value::Kind::kBool:
      w.U8(v.AsBool() ? 2 : 1);
      break;
    case Value::Kind::kInt:
      w.U8(3);
      w.Zig(v.AsInt());
      break;
    case Value::Kind::kDouble:
      w.U8(4);
      w.F64(v.AsDouble());
      break;
    case Value::Kind::kString:
      w.U8(5);
      w.Bytes(v.AsString());
      break;
  }
}

inline bool ReadValue(BinReader& r, Value* out) {
  uint8_t kind;
  if (!r.U8(&kind)) return false;
  switch (kind) {
    case 0:
      *out = Value();
      return true;
    case 1:
      *out = Value(false);
      return true;
    case 2:
      *out = Value(true);
      return true;
    case 3: {
      int64_t i;
      if (!r.Zig(&i)) return false;
      *out = Value(i);
      return true;
    }
    case 4: {
      double d;
      if (!r.F64(&d)) return false;
      *out = Value(d);
      return true;
    }
    case 5: {
      std::string_view s;
      if (!r.Bytes(&s)) return false;
      *out = Value(std::string(s));
      return true;
    }
    default:
      return false;
  }
}

// ---- Wire-type dictionary ----
// The fixed wi:: message-type names (runtime/wire.h), interned into a
// dedicated rules::TokenTable at process start so token == dictionary
// id. Binary HELLO frames carry this table name-by-name and binary DATA
// frames encode the message type as a dictionary id; the receiver
// resolves ids through the dictionary the sender declared (per
// connection), with an inline-string fallback for types outside the
// table. Only the ids covered by the preloaded snapshot are ever used
// on the wire — later dynamic interns stay inline-encoded, so the
// dictionary a HELLO advertised stays valid for the connection's life.

/// The dedicated interner. Preloaded with every wi:: name in id order.
rules::TokenTable& WireTypeTokens();

/// Number of preloaded (dictionary-encodable) type names.
size_t WireTypeCount();

/// Dictionary id for `type`, or -1 when it must ride inline.
int WireTypeId(std::string_view type);

/// Name for a preloaded id; empty view when out of range.
std::string_view WireTypeName(size_t id);

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_CODEC_H_
