file(REMOVE_RECURSE
  "CMakeFiles/crew_laws.dir/export.cc.o"
  "CMakeFiles/crew_laws.dir/export.cc.o.d"
  "CMakeFiles/crew_laws.dir/parser.cc.o"
  "CMakeFiles/crew_laws.dir/parser.cc.o.d"
  "libcrew_laws.a"
  "libcrew_laws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
