#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "expr/parser.h"
#include "model/builder.h"
#include "runtime/coord.h"
#include "runtime/instance.h"
#include "runtime/kv.h"
#include "runtime/ocr.h"
#include "runtime/packet.h"
#include "runtime/programs.h"
#include "runtime/rulegen.h"
#include "runtime/wire.h"
#include "rules/event.h"
#include "sim/metrics.h"

namespace crew::runtime {
namespace {

model::CompiledSchemaPtr CompileSeq3() {
  model::SchemaBuilder b("Seq3");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  b.Sequence({s1, s2, s3});
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok());
  auto compiled = model::CompiledSchema::Compile(std::move(schema).value());
  EXPECT_TRUE(compiled.ok());
  return compiled.value();
}

TEST(KvTest, WriterReaderRoundTrip) {
  KvWriter w;
  w.Add("name", "value").AddInt("count", -3).AddValue("v", Value(2.5));
  w.Add("name", "second");
  Result<KvReader> r = KvReader::Parse(w.Finish());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Get("name"), "value");
  EXPECT_EQ(r.value().GetAll("name"),
            (std::vector<std::string>{"value", "second"}));
  EXPECT_EQ(r.value().GetInt("count").value(), -3);
  EXPECT_EQ(r.value().GetValue("v").value(), Value(2.5));
  EXPECT_FALSE(r.value().GetInt("missing").ok());
  EXPECT_EQ(r.value().GetIntOr("missing", 9), 9);
}

TEST(KvTest, RejectsMalformedLine) {
  EXPECT_FALSE(KvReader::Parse("no equals sign\n").ok());
}

TEST(PacketTest, SerializeParseRoundTrip) {
  WorkflowPacket p;
  p.instance = {"WF2", 4};
  p.target_step = 3;
  p.epoch = 2;
  p.data["WF.I1"] = Value(int64_t{90});
  p.data["WF.I2"] = Value("Blower");
  p.data["S1.O2"] = Value("Gasket");
  p.events.push_back({"WF.start", 1, 0});
  p.events.push_back({"S1.done", 2, 1});
  p.executed_by[1] = 12;
  p.executed_by[2] = 14;
  p.ro_links.push_back({{"WF3", 15}, 2, 4, true});
  p.ro_links.push_back({{"WF5", 12}, 5, 1, false});
  p.rd_links.push_back({{"WF9", 3}, 2, 1});

  Result<WorkflowPacket> parsed = WorkflowPacket::Parse(p.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const WorkflowPacket& q = parsed.value();
  EXPECT_EQ(q.instance, p.instance);
  EXPECT_EQ(q.target_step, 3);
  EXPECT_EQ(q.epoch, 2);
  EXPECT_EQ(q.data, p.data);
  ASSERT_EQ(q.events.size(), 2u);
  EXPECT_EQ(q.events[1].name(), "S1.done");
  EXPECT_EQ(q.events[1].occ, 2);
  EXPECT_EQ(q.events[1].epoch, 1);
  EXPECT_EQ(q.executed_by, p.executed_by);
  ASSERT_EQ(q.ro_links.size(), 2u);
  EXPECT_EQ(q.ro_links[0], p.ro_links[0]);
  EXPECT_EQ(q.ro_links[1], p.ro_links[1]);
  ASSERT_EQ(q.rd_links.size(), 1u);
  EXPECT_EQ(q.rd_links[0], p.rd_links[0]);
}

TEST(PacketTest, RejectsCorruptPayload) {
  EXPECT_FALSE(WorkflowPacket::Parse("inst=1\nstep=2\n").ok());  // no wf
  EXPECT_FALSE(WorkflowPacket::Parse("wf=W\ninst=x\nstep=2\n").ok());
}

TEST(WireTest, WorkflowStartRoundTrip) {
  WorkflowStartMsg m;
  m.instance = {"Order", 7};
  m.reply_to = 0;
  m.inputs["WF.I1"] = Value(int64_t{5});
  Result<WorkflowStartMsg> parsed = WorkflowStartMsg::Parse(m.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().instance, m.instance);
  EXPECT_EQ(parsed.value().inputs, m.inputs);
}

TEST(WireTest, RollbackCarriesNestedPacket) {
  WorkflowRollbackMsg m;
  m.instance = {"WF1", 1};
  m.origin_step = 2;
  m.new_epoch = 3;
  m.state.instance = m.instance;
  m.state.target_step = 2;
  m.state.data["S1.O1"] = Value("nested\nnewline");
  m.state.events.push_back({"S1.done", 1, 0});
  Result<WorkflowRollbackMsg> parsed =
      WorkflowRollbackMsg::Parse(m.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().origin_step, 2);
  EXPECT_EQ(parsed.value().new_epoch, 3);
  EXPECT_EQ(parsed.value().state.data.at("S1.O1"),
            Value("nested\nnewline"));
  ASSERT_EQ(parsed.value().state.events.size(), 1u);
}

TEST(WireTest, CompensateSetRoundTrip) {
  CompensateSetMsg m;
  m.instance = {"WF1", 2};
  m.origin_step = 3;
  m.remaining = {5, 4};
  m.epoch = 1;
  m.resume_agent = 9;
  m.resume.instance = m.instance;
  m.resume.target_step = 3;
  Result<CompensateSetMsg> parsed =
      CompensateSetMsg::Parse(m.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().remaining, (std::vector<StepId>{5, 4}));
  EXPECT_EQ(parsed.value().resume_agent, 9);
  EXPECT_EQ(parsed.value().resume.target_step, 3);
}

TEST(WireTest, RunProgramRoundTrip) {
  RunProgramMsg m;
  m.instance = {"WF1", 2};
  m.step = 4;
  m.program = "synthetic";
  m.attempt = 2;
  m.compensation = true;
  m.cost_fraction = 0.25;
  m.nominal_cost = 800;
  m.designated = 6;
  m.reply_to = 1;
  m.epoch = 5;
  m.inputs["WF.I1"] = Value(true);
  Result<RunProgramMsg> parsed = RunProgramMsg::Parse(m.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().attempt, 2);
  EXPECT_TRUE(parsed.value().compensation);
  EXPECT_NEAR(parsed.value().cost_fraction, 0.25, 1e-9);
  EXPECT_EQ(parsed.value().designated, 6);
  EXPECT_EQ(parsed.value().inputs.at("WF.I1"), Value(true));
}

TEST(WireTest, StateNames) {
  EXPECT_EQ(ParseWorkflowState(WorkflowStateName(WorkflowState::kAborted)),
            WorkflowState::kAborted);
  EXPECT_EQ(ParseStepRunState(StepRunStateName(StepRunState::kExecuting)),
            StepRunState::kExecuting);
  EXPECT_EQ(ParseWorkflowState("gibberish"), WorkflowState::kUnknown);
}

TEST(ProgramsTest, BuiltinsBehave) {
  ProgramRegistry registry;
  registry.RegisterBuiltins();
  ProgramContext ctx;
  ctx.attempt = 3;
  ctx.inputs["a"] = Value(int64_t{2});
  ctx.inputs["b"] = Value(int64_t{5});

  Result<ProgramOutcome> noop = registry.Run("noop", ctx);
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop.value().outputs.at("O1"), Value(int64_t{3}));

  Result<ProgramOutcome> sum = registry.Run("sum", ctx);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.value().outputs.at("O1"), Value(int64_t{7}));

  Result<ProgramOutcome> fail = registry.Run("fail_always", ctx);
  ASSERT_TRUE(fail.ok());
  EXPECT_FALSE(fail.value().success);

  EXPECT_FALSE(registry.Run("missing", ctx).ok());
}

TEST(ProgramsTest, FailFirstN) {
  ProgramRegistry registry;
  registry.RegisterFailFirstN("flaky2", 2);
  ProgramContext ctx;
  ctx.attempt = 1;
  EXPECT_FALSE(registry.Run("flaky2", ctx).value().success);
  ctx.attempt = 2;
  EXPECT_FALSE(registry.Run("flaky2", ctx).value().success);
  ctx.attempt = 3;
  EXPECT_TRUE(registry.Run("flaky2", ctx).value().success);
}

TEST(InstanceTest, EventOccurrenceMergeSemantics) {
  InstanceState state({"WF1", 1}, CompileSeq3());
  EXPECT_TRUE(state.MergeEvent({"S1.done", 1, 0}));
  EXPECT_FALSE(state.MergeEvent({"S1.done", 1, 0}));  // duplicate
  EXPECT_TRUE(state.MergeEvent({"S1.done", 2, 0}));   // loop re-post
  EXPECT_FALSE(state.MergeEvent({"S1.done", 1, 0}));  // stale
  EXPECT_TRUE(state.EventValid("S1.done"));
}

TEST(InstanceTest, PostLocalEventIncrementsOccurrence) {
  InstanceState state({"WF1", 1}, CompileSeq3());
  EventOcc first = state.PostLocalEvent("S1.done");
  EventOcc second = state.PostLocalEvent("S1.done");
  EXPECT_EQ(first.occ, 1);
  EXPECT_EQ(second.occ, 2);
}

TEST(InstanceTest, InvalidateDownstreamRespectsEpoch) {
  InstanceState state({"WF1", 1}, CompileSeq3());
  state.PostLocalEvent("S1.done");
  state.PostLocalEvent("S2.done");
  state.PostLocalEvent("S3.done");
  // Roll back to step 2 under epoch 1: S2/S3 events (epoch 0) die, S1
  // survives (not downstream of 2).
  state.set_epoch(1);
  std::vector<rules::EventToken> killed = state.InvalidateDownstream(2, 1);
  EXPECT_EQ(killed,
            (std::vector<rules::EventToken>{rules::event::StepDoneToken(2),
                                            rules::event::StepDoneToken(3)}));
  EXPECT_TRUE(state.EventValid("S1.done"));
  EXPECT_FALSE(state.EventValid("S2.done"));

  // New-epoch events are not re-invalidated by a replayed halt.
  state.PostLocalEvent("S2.done");  // now at epoch 1
  EXPECT_TRUE(state.InvalidateDownstream(2, 1).empty());
  EXPECT_TRUE(state.EventValid("S2.done"));
}

TEST(InstanceTest, MakePacketCarriesOnlyValidEvents) {
  InstanceState state({"WF1", 1}, CompileSeq3());
  state.PostLocalEvent("S1.done");
  state.PostLocalEvent("S2.done");
  state.set_epoch(1);
  state.InvalidateDownstream(2, 1);
  WorkflowPacket packet = state.MakePacket(3);
  ASSERT_EQ(packet.events.size(), 1u);
  EXPECT_EQ(packet.events[0].name(), "S1.done");
  EXPECT_EQ(packet.epoch, 1);
}

TEST(InstanceTest, MergePacketUpdatesStateAndEpoch) {
  InstanceState state({"WF1", 1}, CompileSeq3());
  WorkflowPacket packet;
  packet.instance = {"WF1", 1};
  packet.epoch = 4;
  packet.data["S1.O1"] = Value(int64_t{10});
  packet.executed_by[1] = 33;
  packet.ro_links.push_back({{"WF2", 9}, 2, 2, false});
  state.MergePacket(packet);
  EXPECT_EQ(state.epoch(), 4);
  EXPECT_EQ(state.GetData("S1.O1"), Value(int64_t{10}));
  EXPECT_EQ(state.executed_by().at(1), 33);
  ASSERT_EQ(state.ro_links().size(), 1u);
  // Merging again does not duplicate links.
  state.MergePacket(packet);
  EXPECT_EQ(state.ro_links().size(), 1u);
}

TEST(OcrTest, FirstExecutionWhenNeverRun) {
  model::Step step;
  step.id = 2;
  InstanceState state({"WF1", 1}, CompileSeq3());
  EXPECT_EQ(DecideOcr(step, state), OcrDecision::kFirstExecution);
}

TEST(OcrTest, ReuseWhenConditionFalse) {
  InstanceState state({"WF1", 1}, CompileSeq3());
  model::Step step;
  step.id = 2;
  step.inputs = {"S1.O1"};
  step.ocr.reexec_condition =
      expr::ParseExpression("changed(S1.O1)").value();

  state.SetData("S1.O1", Value(int64_t{5}));
  StepRecord& record = state.step_record(2);
  record.state = StepRunState::kDone;
  record.prev_inputs["S1.O1"] = Value(int64_t{5});

  EXPECT_EQ(DecideOcr(step, state), OcrDecision::kReuse);

  state.SetData("S1.O1", Value(int64_t{6}));
  EXPECT_EQ(DecideOcr(step, state), OcrDecision::kFullCompReexec);
}

TEST(OcrTest, PartialPathWhenConfigured) {
  InstanceState state({"WF1", 1}, CompileSeq3());
  model::Step step;
  step.id = 2;
  step.cost = 1000;
  step.ocr.partial_compensation_fraction = 0.2;
  step.ocr.incremental_reexec_fraction = 0.3;
  StepRecord& record = state.step_record(2);
  record.state = StepRunState::kDone;

  EXPECT_EQ(DecideOcr(step, state),
            OcrDecision::kPartialCompIncrReexec);
  OcrCost cost = CostOf(step, OcrDecision::kPartialCompIncrReexec);
  EXPECT_EQ(cost.compensation, 200);
  EXPECT_EQ(cost.reexecution, 300);
  EXPECT_EQ(CostOf(step, OcrDecision::kFullCompReexec).total(), 2000);
  EXPECT_EQ(CostOf(step, OcrDecision::kReuse).total(), 0);
}

TEST(OcrTest, PartialApplicabilityCondition) {
  InstanceState state({"WF1", 1}, CompileSeq3());
  state.SetData("delta", Value(int64_t{100}));
  model::Step step;
  step.id = 2;
  step.ocr.partial_compensation_fraction = 0.1;
  step.ocr.partial_applicable_condition =
      expr::ParseExpression("delta < 10").value();
  state.step_record(2).state = StepRunState::kDone;
  EXPECT_EQ(DecideOcr(step, state), OcrDecision::kFullCompReexec);
  state.SetData("delta", Value(int64_t{5}));
  EXPECT_EQ(DecideOcr(step, state),
            OcrDecision::kPartialCompIncrReexec);
}

TEST(RulegenTest, SequentialRules) {
  model::CompiledSchemaPtr schema = CompileSeq3();
  std::vector<rules::Rule> all = MakeAllRules(*schema);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, "exec.S1.start");
  EXPECT_EQ(all[0].events, (std::vector<rules::EventToken>{
                               rules::event::WorkflowStartToken()}));
  EXPECT_EQ(all[1].id, "exec.S2.via.S1");
  EXPECT_EQ(all[2].events, (std::vector<rules::EventToken>{
                               rules::event::StepDoneToken(2)}));
}

TEST(RulegenTest, ChoiceRulesGetConditions) {
  model::SchemaBuilder b("Choice");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  b.CondArc(s1, s2, "S1.O1 > 0");
  b.ElseArc(s1, s3);
  auto compiled =
      model::CompiledSchema::Compile(std::move(b.Build()).value());
  ASSERT_TRUE(compiled.ok());
  std::vector<rules::Rule> rules_s2 = MakeStepRules(*compiled.value(), s2);
  std::vector<rules::Rule> rules_s3 = MakeStepRules(*compiled.value(), s3);
  ASSERT_EQ(rules_s2.size(), 1u);
  ASSERT_NE(rules_s2[0].condition, nullptr);
  ASSERT_EQ(rules_s3.size(), 1u);
  ASSERT_NE(rules_s3[0].condition, nullptr);
  EXPECT_NE(rules_s3[0].condition->ToString().find("not"),
            std::string::npos);
}

TEST(RulegenTest, AndJoinWaitsForAllBranches) {
  model::SchemaBuilder b("Par");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  StepId s4 = b.AddTask("D", "noop");
  b.Parallel(s1, {{s2, s2}, {s3, s3}}, s4);
  auto compiled =
      model::CompiledSchema::Compile(std::move(b.Build()).value());
  ASSERT_TRUE(compiled.ok());
  std::vector<rules::Rule> join = MakeStepRules(*compiled.value(), s4);
  ASSERT_EQ(join.size(), 1u);
  EXPECT_EQ(join[0].events,
            (std::vector<rules::EventToken>{rules::event::StepDoneToken(2),
                                            rules::event::StepDoneToken(3)}));
}

TEST(RulegenTest, DataArcAddsTrigger) {
  model::SchemaBuilder b("Data");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  StepId s4 = b.AddTask("D", "noop");
  b.Parallel(s1, {{s2, s2}, {s3, s3}}, s4);
  b.DataFlow(s2, s3, "S2.O1");
  auto compiled =
      model::CompiledSchema::Compile(std::move(b.Build()).value());
  ASSERT_TRUE(compiled.ok());
  std::vector<rules::Rule> r3 = MakeStepRules(*compiled.value(), s3);
  ASSERT_EQ(r3.size(), 1u);
  EXPECT_EQ(r3[0].events,
            (std::vector<rules::EventToken>{rules::event::StepDoneToken(1),
                                            rules::event::StepDoneToken(2)}));
}

TEST(RulegenTest, LoopBackEdgeRule) {
  model::SchemaBuilder b("Loop");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  b.Arc(s1, s2);
  b.BackArc(s2, s1, "S2.O1 < 3");
  b.CondArc(s2, s3, "S2.O1 >= 3");
  b.SetJoin(s1, model::JoinKind::kOr);
  auto compiled =
      model::CompiledSchema::Compile(std::move(b.Build()).value());
  ASSERT_TRUE(compiled.ok());
  std::vector<rules::Rule> head = MakeStepRules(*compiled.value(), s1);
  ASSERT_EQ(head.size(), 2u);  // start rule + loop rule
  EXPECT_EQ(head[1].id, "exec.S1.loop.S2");
  ASSERT_NE(head[1].condition, nullptr);
}

TEST(CoordTest, TrackerBindsConsecutiveInstances) {
  CoordinationSpec spec;
  RelativeOrderReq ro;
  ro.id = "orders";
  ro.workflow_a = "Order";
  ro.workflow_b = "Order";
  ro.step_pairs = {{2, 2}, {4, 4}};
  spec.relative_orders.push_back(ro);

  ConflictTracker tracker(&spec);
  EXPECT_TRUE(tracker.OnInstanceStart({"Order", 1}).empty());
  std::vector<RoBinding> bindings = tracker.OnInstanceStart({"Order", 2});
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_EQ(bindings[0].leading, (InstanceId{"Order", 1}));
  EXPECT_EQ(bindings[0].lagging, (InstanceId{"Order", 2}));
  EXPECT_EQ(bindings[0].step_pairs.size(), 2u);
}

TEST(CoordTest, TrackerSkipsEndedInstances) {
  CoordinationSpec spec;
  RelativeOrderReq ro;
  ro.id = "orders";
  ro.workflow_a = "Order";
  ro.workflow_b = "Order";
  ro.step_pairs = {{1, 1}};
  spec.relative_orders.push_back(ro);
  ConflictTracker tracker(&spec);
  tracker.OnInstanceStart({"Order", 1});
  tracker.OnInstanceEnd({"Order", 1});
  EXPECT_TRUE(tracker.OnInstanceStart({"Order", 2}).empty());
}

TEST(CoordTest, RollbackDependents) {
  CoordinationSpec spec;
  RollbackDepReq rd;
  rd.id = "dep";
  rd.workflow_a = "Parent";
  rd.step_a = 3;
  rd.workflow_b = "Child";
  rd.step_b = 1;
  spec.rollback_deps.push_back(rd);

  ConflictTracker tracker(&spec);
  tracker.OnInstanceStart({"Parent", 1});
  tracker.OnInstanceStart({"Child", 5});
  // Rollback to step 4 (> step_a): no dependency triggered.
  EXPECT_TRUE(tracker.RollbackDependents({"Parent", 1}, 4).empty());
  // Rollback to step 2 (<= step_a): child must roll back.
  auto deps = tracker.RollbackDependents({"Parent", 1}, 2);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].first, (InstanceId{"Child", 5}));
  EXPECT_EQ(deps[0].second, 1);
}

// Satellite: the sharded tracker must let engines that touch disjoint
// workflow classes run without blocking each other. Two threads churn
// instances of two classes chosen to live on different shards; the
// shard-level contention counter must stay at zero (any cross-thread
// blocking would be a try_lock miss).
TEST(CoordTest, ShardedTrackerDisjointClassesNeverContend) {
  // Pick two class names that land on different shards. The hash is a
  // deterministic FNV-1a, so this search settles once and for all.
  CoordinationSpec probe_spec;
  ConflictTracker probe(&probe_spec);
  const std::string class_a = "OrderA";
  std::string class_b;
  for (int i = 0; i < 64 && class_b.empty(); ++i) {
    std::string candidate = "StockB" + std::to_string(i);
    if (probe.ShardOf(candidate) != probe.ShardOf(class_a)) {
      class_b = candidate;
    }
  }
  ASSERT_FALSE(class_b.empty());

  CoordinationSpec spec;
  for (const std::string& cls : {class_a, class_b}) {
    RelativeOrderReq ro;
    ro.id = "ro-" + cls;
    ro.workflow_a = cls;
    ro.workflow_b = cls;
    ro.step_pairs = {{1, 1}};
    spec.relative_orders.push_back(ro);
  }
  ConflictTracker tracker(&spec);
  ASSERT_NE(tracker.ShardOf(class_a), tracker.ShardOf(class_b));

  constexpr int kIterations = 20000;
  auto churn = [&tracker](const std::string& cls) {
    for (int i = 0; i < kIterations; ++i) {
      tracker.OnInstanceStart({cls, i});
      if (i > 0) tracker.OnInstanceEnd({cls, i - 1});
    }
  };
  std::thread thread_a(churn, class_a);
  std::thread thread_b(churn, class_b);
  thread_a.join();
  thread_b.join();

  // Disjoint classes -> disjoint shard sets -> no acquisition ever found
  // its shard mutex held by the other thread.
  EXPECT_EQ(tracker.total_contended(), 0);
  // Each thread: kIterations starts + (kIterations - 1) ends, one shard
  // lock apiece (the self-RO requirement dedupes to one shard).
  EXPECT_EQ(tracker.total_acquires(), 2 * (2 * kIterations - 1));

  sim::Metrics metrics;
  tracker.ExportStats(&metrics);
  EXPECT_EQ(metrics.Counter("conflict_tracker.shards"),
            tracker.shard_count());
  EXPECT_EQ(metrics.Counter("conflict_tracker.contended"), 0);
  EXPECT_EQ(metrics.Counter("conflict_tracker.acquires"),
            tracker.total_acquires());
}

TEST(CoordTest, RequirementCountSumsAllKinds) {
  CoordinationSpec spec;
  RelativeOrderReq ro;
  ro.workflow_a = "A";
  ro.workflow_b = "B";
  ro.step_pairs = {{1, 1}, {2, 2}};
  spec.relative_orders.push_back(ro);
  MutexReq me;
  me.resource = "r";
  me.critical_steps = {{"A", 3}, {"B", 1}};
  spec.mutexes.push_back(me);
  RollbackDepReq rd;
  rd.workflow_a = "A";
  rd.workflow_b = "B";
  spec.rollback_deps.push_back(rd);
  EXPECT_EQ(spec.RequirementCount("A"), 2 + 1 + 1);
  EXPECT_EQ(spec.RequirementCount("C"), 0);
}

}  // namespace
}  // namespace crew::runtime
