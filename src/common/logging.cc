#include "common/logging.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <mutex>

namespace crew {
namespace {

// Atomic: the live runtime reads the level from every worker thread
// while tests/examples may adjust it from the main thread.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<const int64_t*> g_virtual_clock{nullptr};
std::mutex g_write_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() {
  return g_level.load(std::memory_order_relaxed);
}

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::SetVirtualClock(const int64_t* clock) {
  g_virtual_clock.store(clock, std::memory_order_release);
}

void Logger::ClearVirtualClock(const int64_t* clock) {
  const int64_t* expected = clock;
  g_virtual_clock.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel);
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  const int64_t* clock = g_virtual_clock.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(g_write_mutex);
  if (clock != nullptr) {
    fprintf(stderr, "[%s t=%" PRId64 "] %s\n", LevelName(level), *clock,
            message.c_str());
  } else {
    fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

}  // namespace crew
