#include <gtest/gtest.h>

#include "expr/eval.h"
#include "expr/parser.h"
#include "rules/engine.h"
#include "rules/event.h"

namespace crew::rules {
namespace {

expr::FunctionEnvironment EmptyEnv() {
  return expr::FunctionEnvironment(
      [](const std::string&) { return std::nullopt; });
}

Rule MakeRule(std::string id, std::vector<std::string> events,
              StepId step) {
  Rule rule;
  rule.id = std::move(id);
  for (const std::string& event : events) {
    rule.events.push_back(InternToken(event));
  }
  rule.action = {ActionKind::kExecuteStep, step};
  return rule;
}

TEST(EventTest, TokenFormats) {
  EXPECT_EQ(event::WorkflowStart(), "WF.start");
  EXPECT_EQ(event::StepDone(3), "S3.done");
  EXPECT_EQ(event::StepFail(12), "S12.fail");
  EXPECT_EQ(event::StepCompensated(4), "S4.comp");
  InstanceId lead{"WF1", 5};
  EXPECT_EQ(event::RelativeOrder(lead, 2), "RO:WF1#5:S2.done");
  EXPECT_EQ(event::MutexFree("printer"), "ME:printer.free");
}

TEST(EventTest, ParseStepEvent) {
  EXPECT_EQ(event::ParseStepEvent("S7.done", "done"), 7);
  EXPECT_EQ(event::ParseStepEvent("S7.done", "fail"), kInvalidStep);
  EXPECT_EQ(event::ParseStepEvent("X7.done", "done"), kInvalidStep);
  EXPECT_EQ(event::ParseStepEvent("S.done", "done"), kInvalidStep);
}

TEST(RuleEngineTest, FiresWhenAllEventsPresent) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A", "B"}, 1)).ok());
  auto env = EmptyEnv();
  engine.Post("A");
  EXPECT_TRUE(engine.CollectFireable(env).empty());
  engine.Post("B");
  std::vector<RuleAction> fired = engine.CollectFireable(env);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].step, 1);
}

TEST(RuleEngineTest, DoesNotRefireWithoutNewEvents) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A"}, 1)).ok());
  auto env = EmptyEnv();
  engine.Post("A");
  EXPECT_EQ(engine.CollectFireable(env).size(), 1u);
  EXPECT_TRUE(engine.CollectFireable(env).empty());
}

TEST(RuleEngineTest, RefiresOnRepostedEvent) {
  // Loop semantics: a re-posted trigger re-fires the rule.
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A"}, 1)).ok());
  auto env = EmptyEnv();
  engine.Post("A");
  EXPECT_EQ(engine.CollectFireable(env).size(), 1u);
  engine.Post("A");
  EXPECT_EQ(engine.CollectFireable(env).size(), 1u);
}

TEST(RuleEngineTest, ConditionGatesFiring) {
  RuleEngine engine;
  Rule rule = MakeRule("r1", {"A"}, 1);
  rule.condition = expr::ParseExpression("x > 5").value();
  ASSERT_TRUE(engine.AddRule(std::move(rule)).ok());

  int x = 0;
  expr::FunctionEnvironment env(
      [&x](const std::string& name) -> std::optional<Value> {
        if (name == "x") return Value(int64_t{x});
        return std::nullopt;
      });
  engine.Post("A");
  EXPECT_TRUE(engine.CollectFireable(env).empty());
  x = 6;
  // No new event, but the rule never fired: the condition is re-checked
  // only on a fresh stamp, so re-post to re-evaluate.
  engine.Post("A");
  EXPECT_EQ(engine.CollectFireable(env).size(), 1u);
}

TEST(RuleEngineTest, InvalidationDisarmsRule) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A", "B"}, 1)).ok());
  auto env = EmptyEnv();
  engine.Post("A");
  engine.Invalidate("A");
  engine.Post("B");
  EXPECT_TRUE(engine.CollectFireable(env).empty());
  EXPECT_FALSE(engine.Occurred("A"));
  EXPECT_TRUE(engine.Occurred("B"));
}

TEST(RuleEngineTest, ResetFiringAllowsRefireOnOldEvents) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A"}, 1)).ok());
  auto env = EmptyEnv();
  engine.Post("A");
  EXPECT_EQ(engine.CollectFireable(env).size(), 1u);
  engine.ResetFiringIf([](const Rule& rule) { return rule.id == "r1"; });
  EXPECT_EQ(engine.CollectFireable(env).size(), 1u);
}

TEST(RuleEngineTest, AddPreconditionBlocksUntilEventArrives) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A"}, 1)).ok());
  ASSERT_TRUE(engine.AddPrecondition("r1", "RO:WF1#1:S2.done").ok());
  auto env = EmptyEnv();
  engine.Post("A");
  EXPECT_TRUE(engine.CollectFireable(env).empty());
  engine.Post("RO:WF1#1:S2.done");
  EXPECT_EQ(engine.CollectFireable(env).size(), 1u);
}

TEST(RuleEngineTest, AddPreconditionIsIdempotent) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A"}, 1)).ok());
  ASSERT_TRUE(engine.AddPrecondition("r1", "X").ok());
  ASSERT_TRUE(engine.AddPrecondition("r1", "X").ok());
  EXPECT_EQ(engine.FindRule("r1")->events.size(), 2u);
}

TEST(RuleEngineTest, AddPreconditionOnMissingRuleFails) {
  RuleEngine engine;
  EXPECT_TRUE(engine.AddPrecondition("ghost", "X").IsNotFound());
}

TEST(RuleEngineTest, DuplicateRuleIdRejected) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A"}, 1)).ok());
  EXPECT_EQ(engine.AddRule(MakeRule("r1", {"B"}, 2)).code(),
            StatusCode::kAlreadyExists);
}

TEST(RuleEngineTest, RuleValidationRejectsEmpty) {
  RuleEngine engine;
  EXPECT_FALSE(engine.AddRule(MakeRule("", {"A"}, 1)).ok());
  EXPECT_FALSE(engine.AddRule(MakeRule("r", {}, 1)).ok());
}

TEST(RuleEngineTest, PendingRulesListsMissingEvents) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A", "B", "C"}, 1)).ok());
  engine.Post("B");
  auto pending = engine.PendingRules();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].first, "r1");
  EXPECT_EQ(pending[0].second, (std::vector<std::string>{"A", "C"}));
  EXPECT_EQ(engine.MissingEvents("r1"),
            (std::vector<std::string>{"A", "C"}));
}

TEST(RuleEngineTest, FiringOrderIsDeterministicById) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("b", {"X"}, 2)).ok());
  ASSERT_TRUE(engine.AddRule(MakeRule("a", {"X"}, 1)).ok());
  auto env = EmptyEnv();
  engine.Post("X");
  std::vector<RuleAction> fired = engine.CollectFireable(env);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].step, 1);  // rule "a" first
  EXPECT_EQ(fired[1].step, 2);
}

TEST(RuleEngineTest, RemoveRule) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A"}, 1)).ok());
  EXPECT_TRUE(engine.RemoveRule("r1"));
  EXPECT_FALSE(engine.RemoveRule("r1"));
  auto env = EmptyEnv();
  engine.Post("A");
  EXPECT_TRUE(engine.CollectFireable(env).empty());
}

TEST(RuleEngineTest, FireCountAccumulates) {
  RuleEngine engine;
  ASSERT_TRUE(engine.AddRule(MakeRule("r1", {"A"}, 1)).ok());
  auto env = EmptyEnv();
  engine.Post("A");
  engine.CollectFireable(env);
  engine.Post("A");
  engine.CollectFireable(env);
  EXPECT_EQ(engine.fire_count(), 2);
}

}  // namespace
}  // namespace crew::rules
