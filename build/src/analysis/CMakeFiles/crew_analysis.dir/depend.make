# Empty dependencies file for crew_analysis.
# This may be replaced when dependencies are built.
