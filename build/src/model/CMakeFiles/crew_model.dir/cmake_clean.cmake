file(REMOVE_RECURSE
  "CMakeFiles/crew_model.dir/builder.cc.o"
  "CMakeFiles/crew_model.dir/builder.cc.o.d"
  "CMakeFiles/crew_model.dir/compiled.cc.o"
  "CMakeFiles/crew_model.dir/compiled.cc.o.d"
  "CMakeFiles/crew_model.dir/deployment.cc.o"
  "CMakeFiles/crew_model.dir/deployment.cc.o.d"
  "CMakeFiles/crew_model.dir/schema.cc.o"
  "CMakeFiles/crew_model.dir/schema.cc.o.d"
  "libcrew_model.a"
  "libcrew_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
