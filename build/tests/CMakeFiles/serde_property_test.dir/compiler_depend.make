# Empty compiler generated dependencies file for serde_property_test.
# This may be replaced when dependencies are built.
