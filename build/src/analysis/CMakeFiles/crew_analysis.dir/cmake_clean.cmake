file(REMOVE_RECURSE
  "CMakeFiles/crew_analysis.dir/model.cc.o"
  "CMakeFiles/crew_analysis.dir/model.cc.o.d"
  "CMakeFiles/crew_analysis.dir/recommend.cc.o"
  "CMakeFiles/crew_analysis.dir/recommend.cc.o.d"
  "libcrew_analysis.a"
  "libcrew_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
