#include "analysis/recommend.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace crew::analysis {

const char* ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kNormal: return "Normal";
    case Scenario::kNormalPlusFailures: return "Normal + Failures";
    case Scenario::kNormalPlusCoordinated: return "Normal + Coordinated";
  }
  return "?";
}

std::string Ranking::ToString() const {
  std::string out;
  for (size_t i = 0; i < ranks.size(); ++i) {
    if (i) out += "  ";
    out += "(" + std::to_string(ranks[i].second) + ") ";
    out += workload::ArchitectureName(ranks[i].first);
  }
  return out;
}

namespace {

Ranking Rank(double central, double parallel, double distributed) {
  std::vector<std::pair<workload::Architecture, double>> scored = {
      {workload::Architecture::kCentral, central},
      {workload::Architecture::kParallel, parallel},
      {workload::Architecture::kDistributed, distributed},
  };
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  Ranking ranking;
  int rank = 1;
  for (size_t i = 0; i < scored.size(); ++i) {
    if (i > 0) {
      // Near-equal scores (within 10%) share the rank, as Table 7 does.
      double prev = scored[i - 1].second;
      double cur = scored[i].second;
      double denom = std::max(std::abs(prev), std::abs(cur));
      bool tied = denom < 1e-9 || std::abs(cur - prev) / denom < 0.10;
      if (!tied) rank = static_cast<int>(i) + 1;
    }
    ranking.ranks.emplace_back(scored[i].first, rank);
  }
  return ranking;
}

double MaxNodeLoadPerInstance(const workload::RunResult& result,
                              const std::vector<sim::LoadCategory>& cats,
                              int64_t l) {
  // Max over nodes of the summed categories, per instance, in units of l.
  int64_t best = 0;
  for (NodeId node : result.metrics.LoadedNodes()) {
    int64_t sum = 0;
    for (sim::LoadCategory cat : cats) {
      sum += result.metrics.LoadAt(node, cat);
    }
    best = std::max(best, sum);
  }
  return static_cast<double>(best) /
         (static_cast<double>(l) * result.instances());
}

double MessagesPerInstance(const workload::RunResult& result,
                           const std::vector<sim::MsgCategory>& cats) {
  int64_t sum = 0;
  for (sim::MsgCategory cat : cats) {
    sum += result.metrics.MessagesIn(cat);
  }
  return static_cast<double>(sum) / result.instances();
}

}  // namespace

Recommendation Recommend(const workload::RunResult& central,
                         const workload::RunResult& parallel,
                         const workload::RunResult& distributed,
                         const workload::Params& params) {
  using sim::LoadCategory;
  using sim::MsgCategory;
  const int64_t l = params.navigation_load;

  const std::vector<LoadCategory> normal_load = {
      LoadCategory::kNavigation};
  const std::vector<LoadCategory> failure_load = {
      LoadCategory::kNavigation, LoadCategory::kFailureHandling,
      LoadCategory::kInputChange, LoadCategory::kAbort};
  const std::vector<LoadCategory> coordinated_load = {
      LoadCategory::kNavigation, LoadCategory::kCoordination};

  const std::vector<MsgCategory> normal_msgs = {MsgCategory::kNormal};
  const std::vector<MsgCategory> failure_msgs = {
      MsgCategory::kNormal, MsgCategory::kFailureHandling,
      MsgCategory::kInputChange, MsgCategory::kAbort};
  const std::vector<MsgCategory> coordinated_msgs = {
      MsgCategory::kNormal, MsgCategory::kCoordination};

  Recommendation out;
  auto load_rank = [&](const std::vector<LoadCategory>& cats) {
    return Rank(MaxNodeLoadPerInstance(central, cats, l),
                MaxNodeLoadPerInstance(parallel, cats, l),
                MaxNodeLoadPerInstance(distributed, cats, l));
  };
  auto msg_rank = [&](const std::vector<MsgCategory>& cats) {
    return Rank(MessagesPerInstance(central, cats),
                MessagesPerInstance(parallel, cats),
                MessagesPerInstance(distributed, cats));
  };
  out.load[0] = load_rank(normal_load);
  out.load[1] = load_rank(failure_load);
  out.load[2] = load_rank(coordinated_load);
  out.messages[0] = msg_rank(normal_msgs);
  out.messages[1] = msg_rank(failure_msgs);
  out.messages[2] = msg_rank(coordinated_msgs);
  return out;
}

std::string FormatTable7(const Recommendation& recommendation) {
  std::ostringstream os;
  os << "Table 7: Recommended Choice of Architectures (measured)\n";
  os << "-------------------------------------------------------\n";
  const Scenario scenarios[] = {Scenario::kNormal,
                                Scenario::kNormalPlusFailures,
                                Scenario::kNormalPlusCoordinated};
  os << "Criteria: Load at Engine/Agent\n";
  for (int i = 0; i < 3; ++i) {
    os << "  " << ScenarioName(scenarios[i]) << ": "
       << recommendation.load[i].ToString() << "\n";
  }
  os << "Criteria: Physical Messages\n";
  for (int i = 0; i < 3; ++i) {
    os << "  " << ScenarioName(scenarios[i]) << ": "
       << recommendation.messages[i].ToString() << "\n";
  }
  return os.str();
}

}  // namespace crew::analysis
