#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the full test suite.
#
#   scripts/check.sh                 # RelWithDebInfo into build/
#   scripts/check.sh --sanitize      # ASan+UBSan into build-asan/
#   scripts/check.sh --tsan          # ThreadSanitizer into build-tsan/
#   CREW_SANITIZE=thread scripts/check.sh   # same as --tsan
#   BUILD_DIR=out scripts/check.sh   # custom build directory
set -euo pipefail

cd "$(dirname "$0")/.."

CMAKE_ARGS=()
if [[ "${1:-}" == "--sanitize" || "${CREW_SANITIZE:-}" == "address" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-asan}"
  CMAKE_ARGS+=(-DCREW_SANITIZE=ON)
  [[ "${1:-}" == "--sanitize" ]] && shift
elif [[ "${1:-}" == "--tsan" || "${CREW_SANITIZE:-}" == "thread" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  CMAKE_ARGS+=(-DCREW_SANITIZE=thread)
  [[ "${1:-}" == "--tsan" ]] && shift
else
  BUILD_DIR="${BUILD_DIR:-build}"
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
