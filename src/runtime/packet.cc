#include "runtime/packet.h"

#include <charconv>
#include <cstdlib>

#include "common/strings.h"
#include "runtime/kv.h"

namespace crew::runtime {

std::string RoLink::Serialize() const {
  return other.workflow + "#" + std::to_string(other.number) + ":S" +
         std::to_string(my_step) + ">S" + std::to_string(other_step);
}

Result<RoLink> RoLink::Parse(const std::string& text, bool leading) {
  // Format: <wf>#<num>:S<my>>S<other>
  size_t hash = text.rfind('#');
  size_t colon = text.find(':', hash == std::string::npos ? 0 : hash);
  if (hash == std::string::npos || colon == std::string::npos) {
    return Status::Corruption("bad RO link: " + text);
  }
  RoLink link;
  link.leading = leading;
  link.other.workflow = text.substr(0, hash);
  link.other.number = strtoll(text.c_str() + hash + 1, nullptr, 10);
  const char* p = text.c_str() + colon + 1;
  if (*p != 'S') return Status::Corruption("bad RO link steps: " + text);
  char* end = nullptr;
  link.my_step = static_cast<StepId>(strtol(p + 1, &end, 10));
  if (end == nullptr || *end != '>' || *(end + 1) != 'S') {
    return Status::Corruption("bad RO link steps: " + text);
  }
  link.other_step = static_cast<StepId>(strtol(end + 2, nullptr, 10));
  if (link.my_step <= 0 || link.other_step <= 0) {
    return Status::Corruption("bad RO link steps: " + text);
  }
  return link;
}

std::string RdLink::Serialize() const {
  return other.workflow + "#" + std::to_string(other.number) + ":S" +
         std::to_string(my_step) + ">S" + std::to_string(other_step);
}

Result<RdLink> RdLink::Parse(const std::string& text) {
  Result<RoLink> ro = RoLink::Parse(text, /*leading=*/true);
  if (!ro.ok()) return ro.status();
  RdLink link;
  link.other = ro.value().other;
  link.my_step = ro.value().my_step;
  link.other_step = ro.value().other_step;
  return link;
}

std::string EventOcc::Serialize() const {
  std::string out;
  AppendTo(&out);
  return out;
}

void EventOcc::AppendTo(std::string* out) const {
  out->append(name());
  char buf[48];
  char* p = buf;
  *p++ = '@';
  p = std::to_chars(p, buf + sizeof(buf), occ).ptr;
  *p++ = '@';
  p = std::to_chars(p, buf + sizeof(buf), epoch).ptr;
  out->append(buf, static_cast<size_t>(p - buf));
}

Result<EventOcc> EventOcc::Parse(const std::string& text) {
  size_t at2 = text.rfind('@');
  if (at2 == std::string::npos || at2 == 0) {
    return Status::Corruption("bad event occurrence: " + text);
  }
  size_t at1 = text.rfind('@', at2 - 1);
  if (at1 == std::string::npos || at1 == 0) {
    return Status::Corruption("bad event occurrence: " + text);
  }
  EventOcc e;
  e.token = rules::InternToken(std::string_view(text).substr(0, at1));
  e.occ = strtoll(text.c_str() + at1 + 1, nullptr, 10);
  e.epoch = strtoll(text.c_str() + at2 + 1, nullptr, 10);
  if (e.occ <= 0) {
    return Status::Corruption("bad event occurrence: " + text);
  }
  return e;
}

std::string WorkflowPacket::Serialize() const {
  KvWriter w;
  // Pre-size the buffer: fixed header plus a per-entry estimate (key,
  // separators, and typical value widths) so growth never reallocates
  // more than once for ordinary packets.
  size_t estimate = 64 + instance.workflow.size();
  for (const auto& [name, value] : data) {
    (void)value;
    estimate += name.size() + 24;
  }
  for (const EventOcc& e : events) estimate += e.name().size() + 16;
  estimate += executed_by.size() * 16;
  estimate += (ro_links.size() + rd_links.size()) *
              (instance.workflow.size() + 28);
  w.Reserve(estimate);

  w.Add("wf", instance.workflow);
  w.AddInt("inst", instance.number);
  w.AddInt("step", target_step);
  w.AddInt("epoch", epoch);
  for (const auto& [name, value] : data) {
    w.AddPrefixed("d.", name, value.ToString());
  }
  std::string scratch;
  for (const EventOcc& e : events) {
    scratch.clear();
    e.AppendTo(&scratch);
    w.Add("ev", scratch);
  }
  char buf[32];
  for (const auto& [step, agent] : executed_by) {
    char* p = std::to_chars(buf, buf + sizeof(buf), step).ptr;
    *p++ = ':';
    p = std::to_chars(p, buf + sizeof(buf), agent).ptr;
    w.Add("by", std::string_view(buf, static_cast<size_t>(p - buf)));
  }
  for (const RoLink& link : ro_links) {
    w.Add(link.leading ? "ro_lead" : "ro_lag", link.Serialize());
  }
  for (const RdLink& link : rd_links) {
    w.Add("rd", link.Serialize());
  }
  return w.Finish();
}

Result<WorkflowPacket> WorkflowPacket::Parse(const std::string& payload) {
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  const KvReader& r = reader.value();

  WorkflowPacket p;
  Result<std::string> wf = r.GetRequired("wf");
  if (!wf.ok()) return wf.status();
  p.instance.workflow = std::move(wf).value();
  Result<int64_t> inst = r.GetInt("inst");
  if (!inst.ok()) return inst.status();
  p.instance.number = inst.value();
  Result<int64_t> step = r.GetInt("step");
  if (!step.ok()) return step.status();
  p.target_step = static_cast<StepId>(step.value());
  p.epoch = r.GetIntOr("epoch", 0);

  for (const auto& [key, raw] : r.entries()) {
    if (StartsWith(key, "d.")) {
      Result<Value> v = Value::Parse(raw);
      if (!v.ok()) return v.status();
      p.data[key.substr(2)] = std::move(v).value();
    } else if (key == "ev") {
      Result<EventOcc> e = EventOcc::Parse(raw);
      if (!e.ok()) return e.status();
      p.events.push_back(std::move(e).value());
    } else if (key == "by") {
      size_t colon = raw.find(':');
      if (colon == std::string::npos) {
        return Status::Corruption("bad by entry: " + raw);
      }
      StepId s = static_cast<StepId>(strtol(raw.c_str(), nullptr, 10));
      NodeId n =
          static_cast<NodeId>(strtol(raw.c_str() + colon + 1, nullptr, 10));
      p.executed_by[s] = n;
    } else if (key == "ro_lead" || key == "ro_lag") {
      Result<RoLink> link = RoLink::Parse(raw, key == "ro_lead");
      if (!link.ok()) return link.status();
      p.ro_links.push_back(std::move(link).value());
    } else if (key == "rd") {
      Result<RdLink> link = RdLink::Parse(raw);
      if (!link.ok()) return link.status();
      p.rd_links.push_back(std::move(link).value());
    }
  }
  return p;
}

}  // namespace crew::runtime
