#include "runtime/kv.h"

#include <charconv>
#include <cstdlib>

#include "common/strings.h"

namespace crew::runtime {

KvWriter& KvWriter::Add(std::string_view key, std::string_view raw) {
  buffer_ += key;
  buffer_ += '=';
  buffer_ += raw;
  buffer_ += '\n';
  return *this;
}

KvWriter& KvWriter::AddPrefixed(std::string_view prefix,
                                std::string_view key,
                                std::string_view raw) {
  buffer_ += prefix;
  buffer_ += key;
  buffer_ += '=';
  buffer_ += raw;
  buffer_ += '\n';
  return *this;
}

KvWriter& KvWriter::AddInt(std::string_view key, int64_t v) {
  char buf[24];
  char* end = std::to_chars(buf, buf + sizeof(buf), v).ptr;
  return Add(key, std::string_view(buf, static_cast<size_t>(end - buf)));
}

KvWriter& KvWriter::AddValue(std::string_view key, const Value& v) {
  return Add(key, v.ToString());
}

Result<KvReader> KvReader::Parse(const std::string& payload) {
  KvReader reader;
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    if (end == std::string::npos) end = payload.size();
    std::string line = payload.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::Corruption("kv line without '=': " + line);
    }
    reader.entries_.emplace_back(line.substr(0, eq), line.substr(eq + 1));
  }
  return reader;
}

std::optional<std::string> KvReader::Get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::vector<std::string> KvReader::GetAll(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_) {
    if (k == key) out.push_back(v);
  }
  return out;
}

Result<int64_t> KvReader::GetInt(const std::string& key) const {
  std::optional<std::string> raw = Get(key);
  if (!raw.has_value()) return Status::Corruption("missing key: " + key);
  char* end = nullptr;
  long long v = strtoll(raw->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::Corruption("non-integer value for " + key + ": " + *raw);
  }
  return static_cast<int64_t>(v);
}

int64_t KvReader::GetIntOr(const std::string& key, int64_t fallback) const {
  Result<int64_t> v = GetInt(key);
  return v.ok() ? v.value() : fallback;
}

Result<Value> KvReader::GetValue(const std::string& key) const {
  std::optional<std::string> raw = Get(key);
  if (!raw.has_value()) return Status::Corruption("missing key: " + key);
  return Value::Parse(*raw);
}

Result<std::string> KvReader::GetRequired(const std::string& key) const {
  std::optional<std::string> raw = Get(key);
  if (!raw.has_value()) return Status::Corruption("missing key: " + key);
  return *raw;
}

}  // namespace crew::runtime
