// Figure-style sweep C: failure-handling messages per instance vs the
// probability of step failure pf (0..0.2, the Table 3 range) and vs the
// rollback depth r. §6: "on an average the three architectures are
// comparable" for failure traffic — the crossover depends on (r+v)
// versus 2*r*pr.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

crew::workload::Params BaseParams() {
  crew::workload::Params params;
  params.num_schemas = 10;
  params.instances_per_schema = 10;
  params.num_engines = 4;
  params.num_agents = 50;
  params.p_input_change = 0.0;
  params.p_abort = 0.0;
  params.mutex_steps = 0;
  params.relative_order_steps = 0;
  params.rollback_dep_steps = 0;
  return params;
}

double FailureMessages(const crew::workload::RunResult& result) {
  return result.MessagesPerInstance(
      crew::sim::MsgCategory::kFailureHandling);
}

}  // namespace

int main(int argc, char** argv) {
  crew::bench::BenchSession session("sweep_failures", argc, argv);
  crew::bench::PrintHeader(
      "Sweep C: failure-handling messages/instance vs pf and r",
      BaseParams());

  using crew::workload::Architecture;
  printf("\nvs probability of step failure (r = 5):\n");
  printf("%6s | %10s | %10s | %12s\n", "pf", "central", "parallel",
         "distributed");
  printf("%s\n", std::string(48, '-').c_str());
  for (double pf : {0.0, 0.05, 0.1, 0.2}) {
    crew::workload::Params params = BaseParams();
    params.p_step_failure = pf;
    std::string suffix = "-pf=" + std::to_string(pf);
    crew::workload::RunResult central_run = crew::workload::RunWorkload(
        params, Architecture::kCentral, session.tracer());
    crew::workload::RunResult parallel_run =
        crew::workload::RunWorkload(params, Architecture::kParallel);
    crew::workload::RunResult distributed_run =
        crew::workload::RunWorkload(params, Architecture::kDistributed);
    session.Record("central" + suffix, central_run);
    session.Record("parallel" + suffix, parallel_run);
    session.Record("distributed" + suffix, distributed_run);
    printf("%6.2f | %10.3f | %10.3f | %12.3f\n", pf,
           FailureMessages(central_run), FailureMessages(parallel_run),
           FailureMessages(distributed_run));
  }

  printf("\nvs rollback depth (pf = 0.2):\n");
  printf("%6s | %10s | %10s | %12s\n", "r", "central", "parallel",
         "distributed");
  printf("%s\n", std::string(48, '-').c_str());
  for (int r : {1, 3, 5, 8}) {
    crew::workload::Params params = BaseParams();
    params.p_step_failure = 0.2;
    params.rollback_depth = r;
    std::string suffix = "-r=" + std::to_string(r);
    crew::workload::RunResult central_run =
        crew::workload::RunWorkload(params, Architecture::kCentral);
    crew::workload::RunResult parallel_run =
        crew::workload::RunWorkload(params, Architecture::kParallel);
    crew::workload::RunResult distributed_run =
        crew::workload::RunWorkload(params, Architecture::kDistributed);
    session.Record("central" + suffix, central_run);
    session.Record("parallel" + suffix, parallel_run);
    session.Record("distributed" + suffix, distributed_run);
    printf("%6d | %10.3f | %10.3f | %12.3f\n", r,
           FailureMessages(central_run), FailureMessages(parallel_run),
           FailureMessages(distributed_run));
  }
  printf(
      "\nExpected shape: all series grow with pf and r; central and\n"
      "parallel coincide (same mechanism); distributed is the same order\n"
      "of magnitude — the paper's 'no clear winner'.\n");
  session.Finish();
  return 0;
}
