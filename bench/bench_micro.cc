// Micro-benchmarks of the rule-plumbing hot paths: rule-engine firing,
// packet serialization/parsing, expression evaluation, and WAL appends.
// Writes BENCH_micro.json with items/sec (and bytes/sec) per benchmark.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "expr/eval.h"
#include "expr/parser.h"
#include "net/frame.h"
#include "rt/mailbox.h"
#include "rules/engine.h"
#include "rules/event.h"
#include "runtime/codec.h"
#include "runtime/packet.h"
#include "storage/wal.h"

namespace {

using crew::Value;

// Tracked micro number for the rt::Mailbox queue swap. Arg(0) is the
// uncontended single-thread ping-pong (push one, pop one, run it);
// Arg(N>0) runs N producer threads pushing a 64K-item batch against the
// consumer on the bench thread, so the exchange/link hot path is
// measured under real contention.
void BM_MailboxPushPop(benchmark::State& state) {
  const int producers = static_cast<int>(state.range(0));
  if (producers == 0) {
    crew::rt::Mailbox box(1 << 16);
    int64_t sink = 0;
    for (auto _ : state) {
      box.ForcePush([&sink]() { ++sink; });
      crew::rt::Mailbox::Popped task = box.Pop();
      task.Run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
    return;
  }
  constexpr int kBatch = 1 << 16;
  const int per_producer = kBatch / producers;
  const int64_t total = int64_t{per_producer} * producers;
  for (auto _ : state) {
    crew::rt::Mailbox box(1 << 16);
    std::atomic<int64_t> sink{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&box, &sink, per_producer]() {
        for (int i = 0; i < per_producer; ++i) {
          box.Push(
              [&sink]() { sink.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (int64_t i = 0; i < total; ++i) {
      crew::rt::Mailbox::Popped task = box.Pop();
      task.Run();
    }
    for (auto& t : threads) t.join();
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_MailboxPushPop)->Arg(0)->Arg(1)->Arg(4)->Arg(8);

void BM_RuleEnginePostAndFire(benchmark::State& state) {
  const int num_rules = static_cast<int>(state.range(0));
  crew::rules::RuleEngine engine;
  std::vector<crew::rules::EventToken> tokens;
  for (int i = 0; i < num_rules; ++i) {
    tokens.push_back(crew::rules::event::StepDoneToken(i));
    crew::rules::Rule rule;
    rule.id = "exec.S" + std::to_string(i + 1) + ".via.S" +
              std::to_string(i);
    rule.events = {tokens.back()};
    rule.action = {crew::rules::ActionKind::kExecuteStep, i + 1};
    (void)engine.AddRule(std::move(rule));
  }
  crew::expr::FunctionEnvironment env(
      [](const std::string&) { return std::nullopt; });
  int step = 0;
  for (auto _ : state) {
    engine.Post(tokens[step % num_rules]);
    benchmark::DoNotOptimize(engine.CollectFireable(env));
    ++step;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuleEnginePostAndFire)->Arg(16)->Arg(64)->Arg(256);

crew::runtime::WorkflowPacket MakePacket(int items) {
  crew::runtime::WorkflowPacket packet;
  packet.instance = {"WF2", 4};
  packet.target_step = 3;
  packet.epoch = 1;
  for (int i = 0; i < items; ++i) {
    packet.data["S" + std::to_string(i) + ".O1"] =
        Value(static_cast<int64_t>(i * 10));
    packet.events.push_back(
        {"S" + std::to_string(i) + ".done", 1, 0});
    packet.executed_by[i + 1] = 10 + i;
  }
  packet.ro_links.push_back({{"WF3", 15}, 2, 4, true});
  return packet;
}

// The kv/binary pairs pin the codec explicitly so the two trajectories
// stay comparable whatever the process-wide default is.
void BM_PacketSerialize(benchmark::State& state) {
  crew::runtime::ScopedPayloadCodec guard(crew::runtime::PayloadCodec::kKv);
  crew::runtime::WorkflowPacket packet =
      MakePacket(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(packet.Serialize());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketSerialize)->Arg(5)->Arg(15)->Arg(25);

void BM_PacketSerializeBinary(benchmark::State& state) {
  crew::runtime::ScopedPayloadCodec guard(
      crew::runtime::PayloadCodec::kBinary);
  crew::runtime::WorkflowPacket packet =
      MakePacket(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(packet.Serialize());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketSerializeBinary)->Arg(5)->Arg(15)->Arg(25);

void BM_PacketParse(benchmark::State& state) {
  crew::runtime::ScopedPayloadCodec guard(crew::runtime::PayloadCodec::kKv);
  std::string payload =
      MakePacket(static_cast<int>(state.range(0))).Serialize();
  for (auto _ : state) {
    auto parsed = crew::runtime::WorkflowPacket::Parse(payload);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_PacketParse)->Arg(5)->Arg(15)->Arg(25);

void BM_PacketParseBinary(benchmark::State& state) {
  crew::runtime::ScopedPayloadCodec guard(
      crew::runtime::PayloadCodec::kBinary);
  std::string payload =
      MakePacket(static_cast<int>(state.range(0))).Serialize();
  for (auto _ : state) {
    auto parsed = crew::runtime::WorkflowPacket::Parse(payload);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_PacketParseBinary)->Arg(5)->Arg(15)->Arg(25);

// Superframe staging cost: wrap Arg(N) already-encoded DATA frames in
// one kBatch envelope, the per-wakeup work FlushWrites adds on top of
// memcpying the frames it would copy anyway.
void BM_SuperframeEncode(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  crew::runtime::ScopedPayloadCodec guard(
      crew::runtime::PayloadCodec::kBinary);
  crew::net::Frame frame;
  frame.kind = crew::net::Frame::Kind::kData;
  frame.message.from = 2;
  frame.message.to = 7;
  frame.message.payload = MakePacket(5).Serialize();
  std::vector<std::string> frames;
  size_t inner_bytes = 0;
  for (int i = 0; i < count; ++i) {
    frame.seq = static_cast<uint64_t>(i + 1);
    frames.push_back(crew::net::EncodeFrame(
        frame, crew::runtime::PayloadCodec::kBinary));
    inner_bytes += frames.back().size();
  }
  std::string out;
  for (auto _ : state) {
    out.clear();
    crew::net::AppendBatchHeader(&out, frames.size(), inner_bytes);
    for (const std::string& f : frames) out += f;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_SuperframeEncode)->Arg(4)->Arg(16)->Arg(64);

void BM_ExpressionEvaluate(benchmark::State& state) {
  auto parsed = crew::expr::ParseExpression(
      "S1.O1 >= 10 and (S2.O1 + S3.O1) * 2 < 100 or changed(WF.I1)");
  crew::expr::FunctionEnvironment env(
      [](const std::string& name) -> std::optional<Value> {
        if (name == "WF.I1") return Value(int64_t{7});
        return Value(int64_t{21});
      },
      [](const std::string&) -> std::optional<Value> {
        return Value(int64_t{7});
      });
  for (auto _ : state) {
    benchmark::DoNotOptimize(crew::expr::Evaluate(parsed.value(), env));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpressionEvaluate);

void BM_WalAppend(benchmark::State& state) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "crew_bench_wal.log").string();
  fs::remove(path);
  crew::storage::Wal wal;
  if (!wal.Open(path).ok()) {
    state.SkipWithError("cannot open WAL");
    return;
  }
  std::string record(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.Append(record));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(record.size()));
  wal.Close();
  fs::remove(path);
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(512);

/// Console reporter that additionally collects per-benchmark throughput
/// counters and dumps them as BENCH_micro.json (the bench-trajectory
/// format the table benches emit through BenchSession).
class ItemsJsonReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return benchmark::ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      std::ostringstream os;
      os << "{\"name\":\"" << run.benchmark_name() << "\"";
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        os << ",\"items_per_second\":" << items->second.value;
      }
      auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        os << ",\"bytes_per_second\":" << bytes->second.value;
      }
      os << ",\"real_time_ns\":" << run.GetAdjustedRealTime() << "}";
      entries_.push_back(os.str());
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    FILE* f = fopen("BENCH_micro.json", "w");
    if (f == nullptr) {
      fprintf(stderr, "json: cannot open BENCH_micro.json\n");
      return;
    }
    std::ostringstream os;
    os << "{\"bench\":\"micro\",\"benchmarks\":[";
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) os << ",";
      os << entries_[i];
    }
    os << "]}\n";
    std::string text = os.str();
    fwrite(text.data(), 1, text.size(), f);
    fclose(f);
    printf("json: wrote BENCH_micro.json\n");
  }

 private:
  std::vector<std::string> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ItemsJsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
