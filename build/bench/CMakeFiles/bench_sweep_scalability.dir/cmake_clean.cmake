file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_scalability.dir/bench_sweep_scalability.cc.o"
  "CMakeFiles/bench_sweep_scalability.dir/bench_sweep_scalability.cc.o.d"
  "bench_sweep_scalability"
  "bench_sweep_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
