#include "runtime/coord.h"

#include <algorithm>

#include "sim/metrics.h"

namespace crew::runtime {

namespace {
/// FNV-1a: deterministic across platforms and runs (std::hash is not
/// guaranteed to be), so a class's shard is stable everywhere.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

std::vector<const RelativeOrderReq*> CoordinationSpec::RelativeOrdersOf(
    const std::string& workflow) const {
  std::vector<const RelativeOrderReq*> out;
  for (const RelativeOrderReq& req : relative_orders) {
    if (req.workflow_a == workflow || req.workflow_b == workflow) {
      out.push_back(&req);
    }
  }
  return out;
}

std::vector<const MutexReq*> CoordinationSpec::MutexesOf(
    const std::string& workflow, StepId step) const {
  std::vector<const MutexReq*> out;
  for (const MutexReq& req : mutexes) {
    for (const auto& [wf, s] : req.critical_steps) {
      if (wf == workflow && s == step) {
        out.push_back(&req);
        break;
      }
    }
  }
  return out;
}

std::vector<const RollbackDepReq*> CoordinationSpec::RollbackDepsLeading(
    const std::string& workflow) const {
  std::vector<const RollbackDepReq*> out;
  for (const RollbackDepReq& req : rollback_deps) {
    if (req.workflow_a == workflow) out.push_back(&req);
  }
  return out;
}

int CoordinationSpec::RequirementCount(const std::string& workflow) const {
  int count = 0;
  for (const RelativeOrderReq& req : relative_orders) {
    if (req.workflow_a == workflow || req.workflow_b == workflow) {
      count += static_cast<int>(req.step_pairs.size());
    }
  }
  for (const MutexReq& req : mutexes) {
    for (const auto& [wf, step] : req.critical_steps) {
      if (wf == workflow) ++count;
    }
  }
  for (const RollbackDepReq& req : rollback_deps) {
    if (req.workflow_a == workflow || req.workflow_b == workflow) ++count;
  }
  return count;
}

ConflictTracker::ConflictTracker(const CoordinationSpec* spec, int shards)
    : spec_(spec),
      shard_count_(shards < 1 ? 1 : shards),
      shards_(new Shard[static_cast<size_t>(shard_count_)]) {}

int ConflictTracker::ShardOf(const std::string& workflow) const {
  return static_cast<int>(HashName(workflow) %
                          static_cast<uint64_t>(shard_count_));
}

ConflictTracker::ShardLock::ShardLock(const ConflictTracker* tracker,
                                      std::vector<int> indices)
    : tracker_(tracker), indices_(std::move(indices)) {
  std::sort(indices_.begin(), indices_.end());
  indices_.erase(std::unique(indices_.begin(), indices_.end()),
                 indices_.end());
  for (int index : indices_) {
    Shard& shard = tracker_->shards_[index];
    if (!shard.mu.try_lock()) {
      shard.contended.fetch_add(1, std::memory_order_relaxed);
      shard.mu.lock();
    }
    shard.acquires.fetch_add(1, std::memory_order_relaxed);
  }
}

ConflictTracker::ShardLock::~ShardLock() {
  for (auto it = indices_.rbegin(); it != indices_.rend(); ++it) {
    tracker_->shards_[*it].mu.unlock();
  }
}

std::vector<RoBinding> ConflictTracker::OnInstanceStart(
    const InstanceId& instance) {
  // Lock the shard of the new instance's class plus every class it has a
  // relative-order requirement against: the binding snapshot then has
  // the same atomicity the old global mutex gave it, while instances of
  // unrelated classes proceed through other shards untouched.
  std::vector<int> involved{ShardOf(instance.workflow)};
  for (const RelativeOrderReq& req : spec_->relative_orders) {
    if (req.workflow_b == instance.workflow) {
      involved.push_back(ShardOf(req.workflow_a));
    } else if (req.workflow_a == instance.workflow) {
      involved.push_back(ShardOf(req.workflow_b));
    }
  }
  ShardLock lock(this, std::move(involved));

  std::vector<RoBinding> bindings;
  for (const RelativeOrderReq& req : spec_->relative_orders) {
    // The new instance may play role B (lagging behind a live A instance)
    // or role A (lagging behind a live earlier B instance, when the
    // requirement relates a class to itself or classes started
    // interleaved). Ordering follows start order: earlier leads.
    auto bind_against = [&](const std::string& lead_class, bool new_is_a) {
      const auto& live = shards_[ShardOf(lead_class)].live;
      auto it = live.find(lead_class);
      if (it == live.end() || it->second.empty()) return;
      const InstanceId& lead = it->second.back();
      if (lead == instance) return;
      RoBinding binding;
      binding.leading = lead;
      binding.lagging = instance;
      for (const auto& [step_a, step_b] : req.step_pairs) {
        // Pair is (A-step, B-step); map onto (lead step, lag step).
        binding.step_pairs.emplace_back(new_is_a ? step_b : step_a,
                                        new_is_a ? step_a : step_b);
      }
      bindings.push_back(std::move(binding));
    };
    if (req.workflow_b == instance.workflow) {
      bind_against(req.workflow_a, /*new_is_a=*/false);
    } else if (req.workflow_a == instance.workflow) {
      bind_against(req.workflow_b, /*new_is_a=*/true);
    }
  }
  shards_[ShardOf(instance.workflow)].live[instance.workflow].push_back(
      instance);
  return bindings;
}

std::vector<std::pair<InstanceId, StepId>>
ConflictTracker::RollbackDependents(const InstanceId& instance,
                                    StepId to_step) const {
  std::vector<int> involved;
  for (const RollbackDepReq& req : spec_->rollback_deps) {
    if (req.workflow_a == instance.workflow) {
      involved.push_back(ShardOf(req.workflow_b));
    }
  }
  if (involved.empty()) return {};
  ShardLock lock(this, std::move(involved));

  std::vector<std::pair<InstanceId, StepId>> out;
  for (const RollbackDepReq& req : spec_->rollback_deps) {
    if (req.workflow_a != instance.workflow) continue;
    // Dependency triggers when rolling back to or above step_a.
    if (req.step_a != kInvalidStep && to_step > req.step_a) continue;
    const auto& live = shards_[ShardOf(req.workflow_b)].live;
    auto it = live.find(req.workflow_b);
    if (it == live.end()) continue;
    for (const InstanceId& dependent : it->second) {
      if (dependent == instance) continue;
      out.emplace_back(dependent, req.step_b);
    }
  }
  return out;
}

void ConflictTracker::OnInstanceEnd(const InstanceId& instance) {
  ShardLock lock(this, {ShardOf(instance.workflow)});
  auto& live = shards_[ShardOf(instance.workflow)].live;
  auto it = live.find(instance.workflow);
  if (it == live.end()) return;
  auto& list = it->second;
  list.erase(std::remove(list.begin(), list.end(), instance), list.end());
}

int64_t ConflictTracker::total_acquires() const {
  int64_t sum = 0;
  for (int i = 0; i < shard_count_; ++i) {
    sum += shards_[i].acquires.load(std::memory_order_relaxed);
  }
  return sum;
}

int64_t ConflictTracker::total_contended() const {
  int64_t sum = 0;
  for (int i = 0; i < shard_count_; ++i) {
    sum += shards_[i].contended.load(std::memory_order_relaxed);
  }
  return sum;
}

void ConflictTracker::ExportStats(sim::Metrics* metrics) const {
  metrics->AddCounter("conflict_tracker.shards", shard_count_);
  metrics->AddCounter("conflict_tracker.acquires", total_acquires());
  metrics->AddCounter("conflict_tracker.contended", total_contended());
}

}  // namespace crew::runtime
