#include "runtime/wire.h"

#include "common/strings.h"
#include "runtime/codec.h"
#include "runtime/kv.h"

namespace crew::runtime {
namespace {

void WriteInstance(KvWriter* w, const InstanceId& instance) {
  w->Add("wf", instance.workflow);
  w->AddInt("inst", instance.number);
}

Status ReadInstance(const KvReader& r, InstanceId* instance) {
  Result<std::string> wf = r.GetRequired("wf");
  if (!wf.ok()) return wf.status();
  instance->workflow = std::move(wf).value();
  Result<int64_t> number = r.GetInt("inst");
  if (!number.ok()) return number.status();
  instance->number = number.value();
  return Status::OK();
}

void WriteDataMap(KvWriter* w, const std::string& prefix,
                  const std::map<std::string, Value>& data) {
  for (const auto& [name, value] : data) {
    w->Add(prefix + name, value.ToString());
  }
}

Status ReadDataMap(const KvReader& r, const std::string& prefix,
                   std::map<std::string, Value>* data) {
  for (const auto& [key, raw] : r.entries()) {
    if (!StartsWith(key, prefix)) continue;
    Result<Value> v = Value::Parse(raw);
    if (!v.ok()) return v.status();
    (*data)[key.substr(prefix.size())] = std::move(v).value();
  }
  return Status::OK();
}

// ---- binary payload helpers (the runtime/codec.h seam) ----
//
// Every message is [kBinaryMagic][BinMsgId][TLV fields]. A field tag is
// one byte, (field_number << 2) | wire_type, wire type 0 = varint (also
// used for counted sections — the count follows the tag), wire type 1 =
// length-prefixed bytes. Signed ints are zigzag varints. Fields with
// empty/default composite values are simply omitted. See DESIGN.md §5i.

constexpr uint8_t TagI(int field) {
  return static_cast<uint8_t>(field << 2);
}
constexpr uint8_t TagS(int field) {
  return static_cast<uint8_t>((field << 2) | 1);
}

constexpr size_t kIntFieldBound = 1 + kMaxVarintBytes;

size_t StrFieldBound(std::string_view s) { return 1 + BytesBound(s); }

size_t MapSectionBound(const std::map<std::string, Value>& m) {
  if (m.empty()) return 0;
  size_t bound = 1 + 5;  // tag + count
  for (const auto& [name, value] : m) {
    bound += BytesBound(name) + ValueBound(value);
  }
  return bound;
}

size_t RoSectionBound(const std::vector<RoLink>& links) {
  if (links.empty()) return 0;
  size_t bound = 1 + 5;
  for (const RoLink& link : links) {
    bound += BytesBound(link.other.workflow) + 3 * kMaxVarintBytes + 1;
  }
  return bound;
}

size_t RdSectionBound(const std::vector<RdLink>& links) {
  if (links.empty()) return 0;
  size_t bound = 1 + 5;
  for (const RdLink& link : links) {
    bound += BytesBound(link.other.workflow) + 3 * kMaxVarintBytes;
  }
  return bound;
}

void WriteRoSection(BinWriter& w, int field,
                    const std::vector<RoLink>& links) {
  if (links.empty()) return;
  w.U8(TagI(field));
  w.Varint(links.size());
  for (const RoLink& link : links) {
    w.Bytes(link.other.workflow);
    w.Zig(link.other.number);
    w.Zig(link.my_step);
    w.Zig(link.other_step);
    w.U8(link.leading ? 1 : 0);
  }
}

void WriteRdSection(BinWriter& w, int field,
                    const std::vector<RdLink>& links) {
  if (links.empty()) return;
  w.U8(TagI(field));
  w.Varint(links.size());
  for (const RdLink& link : links) {
    w.Bytes(link.other.workflow);
    w.Zig(link.other.number);
    w.Zig(link.my_step);
    w.Zig(link.other_step);
  }
}

bool ReadLinkBin(BinReader& r, InstanceId* other, StepId* my_step,
                 StepId* other_step) {
  std::string_view wf;
  int64_t number, mine, theirs;
  if (!r.Bytes(&wf) || !r.Zig(&number) || !r.Zig(&mine) || !r.Zig(&theirs)) {
    return false;
  }
  other->workflow.assign(wf);
  other->number = number;
  *my_step = static_cast<StepId>(mine);
  *other_step = static_cast<StepId>(theirs);
  return true;
}

bool ReadRoSection(BinReader& r, std::vector<RoLink>* out) {
  uint64_t count;
  if (!r.Varint(&count) || count > r.remaining()) return false;
  for (uint64_t i = 0; i < count; ++i) {
    RoLink link;
    uint8_t leading;
    if (!ReadLinkBin(r, &link.other, &link.my_step, &link.other_step) ||
        !r.U8(&leading)) {
      return false;
    }
    link.leading = leading != 0;
    out->push_back(std::move(link));
  }
  return true;
}

bool ReadRdSection(BinReader& r, std::vector<RdLink>* out) {
  uint64_t count;
  if (!r.Varint(&count) || count > r.remaining()) return false;
  for (uint64_t i = 0; i < count; ++i) {
    RdLink link;
    if (!ReadLinkBin(r, &link.other, &link.my_step, &link.other_step)) {
      return false;
    }
    out->push_back(std::move(link));
  }
  return true;
}

bool ReadMapSection(BinReader& r, std::map<std::string, Value>* out) {
  uint64_t count;
  if (!r.Varint(&count) || count > r.remaining()) return false;
  // The writer emits keys in map order, so appending at end() is the
  // common case and keeps insertion O(1) per entry.
  auto hint = out->end();
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view name;
    Value value;
    if (!r.Bytes(&name) || !ReadValue(r, &value)) return false;
    hint = out->emplace_hint(hint, std::string(name), std::move(value));
    ++hint;
  }
  return true;
}

/// Writer facade for one binary message: magic + id, then tagged fields.
class MsgWriter {
 public:
  MsgWriter(std::string* out, size_t bound, BinMsgId id)
      : w_(out, bound + 2) {
    w_.U8(kBinaryMagic);
    w_.U8(static_cast<uint8_t>(id));
  }
  void Int(int field, int64_t v) {
    w_.U8(TagI(field));
    w_.Zig(v);
  }
  void Str(int field, std::string_view s) {
    w_.U8(TagS(field));
    w_.Bytes(s);
  }
  void Map(int field, const std::map<std::string, Value>& m) {
    if (m.empty()) return;
    w_.U8(TagI(field));
    w_.Varint(m.size());
    for (const auto& [name, value] : m) {
      w_.Bytes(name);
      WriteValue(w_, value);
    }
  }
  void Finish() { w_.Finish(); }
  BinWriter& w() { return w_; }

 private:
  BinWriter w_;
};

/// Reader facade: drives the TLV loop, delegating each tag to a
/// per-message lambda that returns false on malformed/unknown fields.
class MsgReader {
 public:
  explicit MsgReader(const std::string& payload)
      : r_(std::string_view(payload).substr(2)) {}

  template <typename F>
  Status Drive(const char* what, F&& field) {
    while (!r_.done()) {
      uint8_t tag = 0;
      r_.U8(&tag);
      if (!field(tag)) {
        return Status::Corruption(std::string("malformed binary ") + what +
                                  " payload");
      }
    }
    return Status::OK();
  }

  bool Str(std::string* out) {
    std::string_view s;
    if (!r_.Bytes(&s)) return false;
    out->assign(s);
    return true;
  }
  bool View(std::string_view* out) { return r_.Bytes(out); }
  bool Int(int64_t* v) { return r_.Zig(v); }
  template <typename T>
  bool IntAs(T* v) {
    int64_t x;
    if (!r_.Zig(&x)) return false;
    *v = static_cast<T>(x);
    return true;
  }
  bool Flag(bool* v) {
    int64_t x;
    if (!r_.Zig(&x)) return false;
    *v = x != 0;
    return true;
  }
  bool Map(std::map<std::string, Value>* m) { return ReadMapSection(r_, m); }
  BinReader& r() { return r_; }

 private:
  BinReader r_;
};

Status CheckBinId(const std::string& payload, BinMsgId id,
                  const char* what) {
  if (payload.size() < 2 ||
      static_cast<uint8_t>(payload[1]) != static_cast<uint8_t>(id)) {
    return Status::Corruption(std::string("binary payload is not ") + what);
  }
  return Status::OK();
}

size_t InstanceBound(const InstanceId& instance) {
  return StrFieldBound(instance.workflow) + kIntFieldBound;
}

}  // namespace

const char* WorkflowStateName(WorkflowState state) {
  switch (state) {
    case WorkflowState::kUnknown: return "unknown";
    case WorkflowState::kExecuting: return "executing";
    case WorkflowState::kCommitted: return "committed";
    case WorkflowState::kAborted: return "aborted";
  }
  return "?";
}

WorkflowState ParseWorkflowState(const std::string& name) {
  if (name == "executing") return WorkflowState::kExecuting;
  if (name == "committed") return WorkflowState::kCommitted;
  if (name == "aborted") return WorkflowState::kAborted;
  return WorkflowState::kUnknown;
}

const char* StepRunStateName(StepRunState state) {
  switch (state) {
    case StepRunState::kUnknown: return "unknown";
    case StepRunState::kExecuting: return "executing";
    case StepRunState::kDone: return "done";
    case StepRunState::kFailed: return "failed";
    case StepRunState::kCompensated: return "compensated";
  }
  return "?";
}

StepRunState ParseStepRunState(const std::string& name) {
  if (name == "executing") return StepRunState::kExecuting;
  if (name == "done") return StepRunState::kDone;
  if (name == "failed") return StepRunState::kFailed;
  if (name == "compensated") return StepRunState::kCompensated;
  return StepRunState::kUnknown;
}

// ---- WorkflowStartMsg ----

std::string WorkflowStartMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out,
                InstanceBound(instance) + kIntFieldBound +
                    MapSectionBound(inputs) + RoSectionBound(ro_links) +
                    RdSectionBound(rd_links) +
                    StrFieldBound(parent.workflow) + 2 * kIntFieldBound,
                BinMsgId::kWorkflowStart);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, reply_to);
    w.Map(4, inputs);
    WriteRoSection(w.w(), 5, ro_links);
    WriteRdSection(w.w(), 6, rd_links);
    if (!parent.workflow.empty()) {
      w.Str(7, parent.workflow);
      w.Int(8, parent.number);
      w.Int(9, parent_step);
    }
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("reply_to", reply_to);
  WriteDataMap(&w, "i.", inputs);
  for (const RoLink& link : ro_links) {
    w.Add(link.leading ? "ro_lead" : "ro_lag", link.Serialize());
  }
  for (const RdLink& link : rd_links) {
    w.Add("rd", link.Serialize());
  }
  if (!parent.workflow.empty()) {
    w.Add("parent_wf", parent.workflow);
    w.AddInt("parent_inst", parent.number);
    w.AddInt("parent_step", parent_step);
  }
  return w.Finish();
}

Result<WorkflowStartMsg> WorkflowStartMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kWorkflowStart, "WorkflowStart"));
    WorkflowStartMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("WorkflowStart", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.reply_to);
        case TagI(4): return r.Map(&m.inputs);
        case TagI(5): return ReadRoSection(r.r(), &m.ro_links);
        case TagI(6): return ReadRdSection(r.r(), &m.rd_links);
        case TagS(7): return r.Str(&m.parent.workflow);
        case TagI(8): return r.Int(&m.parent.number);
        case TagI(9): return r.IntAs(&m.parent_step);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowStartMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  m.reply_to = static_cast<NodeId>(
      reader.value().GetIntOr("reply_to", kInvalidNode));
  CREW_RETURN_IF_ERROR(ReadDataMap(reader.value(), "i.", &m.inputs));
  for (const auto& [key, raw] : reader.value().entries()) {
    if (key == "ro_lead" || key == "ro_lag") {
      Result<RoLink> link = RoLink::Parse(raw, key == "ro_lead");
      if (!link.ok()) return link.status();
      m.ro_links.push_back(std::move(link).value());
    } else if (key == "rd") {
      Result<RdLink> link = RdLink::Parse(raw);
      if (!link.ok()) return link.status();
      m.rd_links.push_back(std::move(link).value());
    }
  }
  m.parent.workflow = reader.value().Get("parent_wf").value_or("");
  m.parent.number = reader.value().GetIntOr("parent_inst", 0);
  m.parent_step = static_cast<StepId>(
      reader.value().GetIntOr("parent_step", kInvalidStep));
  return m;
}

// ---- WorkflowChangeInputsMsg ----

std::string WorkflowChangeInputsMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out,
                InstanceBound(instance) + kIntFieldBound +
                    MapSectionBound(new_inputs),
                BinMsgId::kWorkflowChangeInputs);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, origin_step);
    w.Map(4, new_inputs);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("origin", origin_step);
  WriteDataMap(&w, "i.", new_inputs);
  return w.Finish();
}

Result<WorkflowChangeInputsMsg> WorkflowChangeInputsMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(CheckBinId(payload, BinMsgId::kWorkflowChangeInputs,
                                    "WorkflowChangeInputs"));
    WorkflowChangeInputsMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("WorkflowChangeInputs", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.origin_step);
        case TagI(4): return r.Map(&m.new_inputs);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowChangeInputsMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  m.origin_step = static_cast<StepId>(
      reader.value().GetIntOr("origin", kInvalidStep));
  CREW_RETURN_IF_ERROR(ReadDataMap(reader.value(), "i.", &m.new_inputs));
  return m;
}

// ---- WorkflowAbortMsg ----

std::string WorkflowAbortMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance), BinMsgId::kWorkflowAbort);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  return w.Finish();
}

Result<WorkflowAbortMsg> WorkflowAbortMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kWorkflowAbort, "WorkflowAbort"));
    WorkflowAbortMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("WorkflowAbort", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowAbortMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  return m;
}

// ---- WorkflowStatusMsg ----

std::string WorkflowStatusMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance) + kIntFieldBound,
                BinMsgId::kWorkflowStatus);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, reply_to);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("reply_to", reply_to);
  return w.Finish();
}

Result<WorkflowStatusMsg> WorkflowStatusMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kWorkflowStatus, "WorkflowStatus"));
    WorkflowStatusMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("WorkflowStatus", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.reply_to);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowStatusMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  m.reply_to = static_cast<NodeId>(
      reader.value().GetIntOr("reply_to", kInvalidNode));
  return m;
}

// ---- WorkflowStatusReplyMsg ----

std::string WorkflowStatusReplyMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance) + kIntFieldBound,
                BinMsgId::kWorkflowStatusReply);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, static_cast<int64_t>(state));
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.Add("state", WorkflowStateName(state));
  return w.Finish();
}

Result<WorkflowStatusReplyMsg> WorkflowStatusReplyMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(CheckBinId(payload, BinMsgId::kWorkflowStatusReply,
                                    "WorkflowStatusReply"));
    WorkflowStatusReplyMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("WorkflowStatusReply", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): {
          int64_t v;
          if (!r.Int(&v)) return false;
          m.state = (v >= 0 && v <= 3) ? static_cast<WorkflowState>(v)
                                       : WorkflowState::kUnknown;
          return true;
        }
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowStatusReplyMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<std::string> state = reader.value().GetRequired("state");
  if (!state.ok()) return state.status();
  m.state = ParseWorkflowState(state.value());
  return m;
}

// ---- StepExecuteMsg ----

Result<StepExecuteMsg> StepExecuteMsg::Parse(const std::string& payload) {
  Result<WorkflowPacket> packet = WorkflowPacket::Parse(payload);
  if (!packet.ok()) return packet.status();
  return StepExecuteMsg{std::move(packet).value()};
}

// ---- StepCompensateMsg ----

std::string StepCompensateMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance) + 2 * kIntFieldBound,
                BinMsgId::kStepCompensate);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, step);
    w.Int(4, epoch);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.AddInt("epoch", epoch);
  return w.Finish();
}

Result<StepCompensateMsg> StepCompensateMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kStepCompensate, "StepCompensate"));
    StepCompensateMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("StepCompensate", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.step);
        case TagI(4): return r.Int(&m.epoch);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StepCompensateMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  m.epoch = reader.value().GetIntOr("epoch", 0);
  return m;
}

// ---- StepCompletedMsg ----

std::string StepCompletedMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out,
                InstanceBound(instance) + 2 * kIntFieldBound +
                    MapSectionBound(results),
                BinMsgId::kStepCompleted);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, step);
    w.Int(4, epoch);
    w.Map(5, results);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.AddInt("epoch", epoch);
  WriteDataMap(&w, "r.", results);
  return w.Finish();
}

Result<StepCompletedMsg> StepCompletedMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kStepCompleted, "StepCompleted"));
    StepCompletedMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("StepCompleted", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.step);
        case TagI(4): return r.Int(&m.epoch);
        case TagI(5): return r.Map(&m.results);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StepCompletedMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  m.epoch = reader.value().GetIntOr("epoch", 0);
  CREW_RETURN_IF_ERROR(ReadDataMap(reader.value(), "r.", &m.results));
  return m;
}

// ---- StepStatusMsg ----

std::string StepStatusMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance) + 2 * kIntFieldBound,
                BinMsgId::kStepStatus);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, step);
    w.Int(4, reply_to);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.AddInt("reply_to", reply_to);
  return w.Finish();
}

Result<StepStatusMsg> StepStatusMsg::Parse(const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kStepStatus, "StepStatus"));
    StepStatusMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("StepStatus", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.step);
        case TagI(4): return r.IntAs(&m.reply_to);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StepStatusMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  m.reply_to = static_cast<NodeId>(
      reader.value().GetIntOr("reply_to", kInvalidNode));
  return m;
}

// ---- StepStatusReplyMsg ----

std::string StepStatusReplyMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance) + 3 * kIntFieldBound,
                BinMsgId::kStepStatusReply);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, step);
    w.Int(4, static_cast<int64_t>(state));
    w.Int(5, responder);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.Add("state", StepRunStateName(state));
  w.AddInt("responder", responder);
  return w.Finish();
}

Result<StepStatusReplyMsg> StepStatusReplyMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kStepStatusReply, "StepStatusReply"));
    StepStatusReplyMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("StepStatusReply", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.step);
        case TagI(4): {
          int64_t v;
          if (!r.Int(&v)) return false;
          m.state = (v >= 0 && v <= 4) ? static_cast<StepRunState>(v)
                                       : StepRunState::kUnknown;
          return true;
        }
        case TagI(5): return r.IntAs(&m.responder);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StepStatusReplyMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  Result<std::string> state = reader.value().GetRequired("state");
  if (!state.ok()) return state.status();
  m.state = ParseStepRunState(state.value());
  m.responder = static_cast<NodeId>(
      reader.value().GetIntOr("responder", kInvalidNode));
  return m;
}

// ---- WorkflowRollbackMsg ----

std::string WorkflowRollbackMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    // The embedded packet is a length-prefixed binary packet — no
    // escaping needed, unlike the kv form.
    std::string inner = state.SerializeBinary();
    std::string out;
    MsgWriter w(&out,
                InstanceBound(instance) + 2 * kIntFieldBound +
                    StrFieldBound(inner),
                BinMsgId::kWorkflowRollback);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, origin_step);
    w.Int(4, new_epoch);
    w.Str(5, inner);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("origin", origin_step);
  w.AddInt("new_epoch", new_epoch);
  // Embed the packet with escaped newlines.
  std::string inner = state.Serialize();
  std::string escaped;
  for (char c : inner) {
    if (c == '\n') {
      escaped += "\\n";
    } else if (c == '\\') {
      escaped += "\\\\";
    } else {
      escaped += c;
    }
  }
  w.Add("state", escaped);
  return w.Finish();
}

Result<WorkflowRollbackMsg> WorkflowRollbackMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kWorkflowRollback, "WorkflowRollback"));
    WorkflowRollbackMsg m;
    std::string_view inner;
    bool saw_state = false;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("WorkflowRollback", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.origin_step);
        case TagI(4): return r.Int(&m.new_epoch);
        case TagS(5): saw_state = true; return r.View(&inner);
        default: return false;
      }
    }));
    if (!saw_state) {
      return Status::Corruption("WorkflowRollback missing embedded packet");
    }
    Result<WorkflowPacket> packet = WorkflowPacket::Parse(std::string(inner));
    if (!packet.ok()) return packet.status();
    m.state = std::move(packet).value();
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  WorkflowRollbackMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> origin = reader.value().GetInt("origin");
  if (!origin.ok()) return origin.status();
  m.origin_step = static_cast<StepId>(origin.value());
  m.new_epoch = reader.value().GetIntOr("new_epoch", 0);
  Result<std::string> escaped = reader.value().GetRequired("state");
  if (!escaped.ok()) return escaped.status();
  std::string inner;
  const std::string& e = escaped.value();
  for (size_t i = 0; i < e.size(); ++i) {
    if (e[i] == '\\' && i + 1 < e.size()) {
      ++i;
      inner += (e[i] == 'n') ? '\n' : e[i];
    } else {
      inner += e[i];
    }
  }
  Result<WorkflowPacket> packet = WorkflowPacket::Parse(inner);
  if (!packet.ok()) return packet.status();
  m.state = std::move(packet).value();
  return m;
}

// ---- HaltThreadMsg ----

std::string HaltThreadMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance) + 2 * kIntFieldBound,
                BinMsgId::kHaltThread);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, origin_step);
    w.Int(4, new_epoch);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("origin", origin_step);
  w.AddInt("new_epoch", new_epoch);
  return w.Finish();
}

Result<HaltThreadMsg> HaltThreadMsg::Parse(const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kHaltThread, "HaltThread"));
    HaltThreadMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("HaltThread", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.origin_step);
        case TagI(4): return r.Int(&m.new_epoch);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  HaltThreadMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> origin = reader.value().GetInt("origin");
  if (!origin.ok()) return origin.status();
  m.origin_step = static_cast<StepId>(origin.value());
  m.new_epoch = reader.value().GetIntOr("new_epoch", 0);
  return m;
}

// ---- CompensateSetMsg ----

std::string CompensateSetMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string inner = resume.SerializeBinary();
    std::string out;
    size_t remaining_bound =
        remaining.empty() ? 0 : 1 + 5 + remaining.size() * kMaxVarintBytes;
    MsgWriter w(&out,
                InstanceBound(instance) + 3 * kIntFieldBound +
                    remaining_bound + StrFieldBound(inner),
                BinMsgId::kCompensateSet);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, origin_step);
    w.Int(4, epoch);
    w.Int(5, resume_agent);
    if (!remaining.empty()) {
      w.w().U8(TagI(6));
      w.w().Varint(remaining.size());
      for (StepId s : remaining) w.w().Zig(s);
    }
    w.Str(7, inner);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("origin", origin_step);
  w.AddInt("epoch", epoch);
  w.AddInt("resume_agent", resume_agent);
  for (StepId s : remaining) w.AddInt("s", s);
  std::string inner = resume.Serialize();
  std::string escaped;
  for (char c : inner) {
    if (c == '\n') {
      escaped += "\\n";
    } else if (c == '\\') {
      escaped += "\\\\";
    } else {
      escaped += c;
    }
  }
  w.Add("resume", escaped);
  return w.Finish();
}

Result<CompensateSetMsg> CompensateSetMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kCompensateSet, "CompensateSet"));
    CompensateSetMsg m;
    std::string_view inner;
    bool saw_resume = false;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("CompensateSet", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.origin_step);
        case TagI(4): return r.Int(&m.epoch);
        case TagI(5): return r.IntAs(&m.resume_agent);
        case TagI(6): {
          uint64_t count;
          if (!r.r().Varint(&count) || count > r.r().remaining()) {
            return false;
          }
          for (uint64_t i = 0; i < count; ++i) {
            int64_t s;
            if (!r.r().Zig(&s)) return false;
            m.remaining.push_back(static_cast<StepId>(s));
          }
          return true;
        }
        case TagS(7): saw_resume = true; return r.View(&inner);
        default: return false;
      }
    }));
    if (!saw_resume) {
      return Status::Corruption("CompensateSet missing embedded packet");
    }
    Result<WorkflowPacket> packet = WorkflowPacket::Parse(std::string(inner));
    if (!packet.ok()) return packet.status();
    m.resume = std::move(packet).value();
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  CompensateSetMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> origin = reader.value().GetInt("origin");
  if (!origin.ok()) return origin.status();
  m.origin_step = static_cast<StepId>(origin.value());
  m.epoch = reader.value().GetIntOr("epoch", 0);
  m.resume_agent = static_cast<NodeId>(
      reader.value().GetIntOr("resume_agent", kInvalidNode));
  for (const std::string& raw : reader.value().GetAll("s")) {
    m.remaining.push_back(
        static_cast<StepId>(strtol(raw.c_str(), nullptr, 10)));
  }
  Result<std::string> escaped = reader.value().GetRequired("resume");
  if (!escaped.ok()) return escaped.status();
  std::string inner;
  const std::string& e = escaped.value();
  for (size_t i = 0; i < e.size(); ++i) {
    if (e[i] == '\\' && i + 1 < e.size()) {
      ++i;
      inner += (e[i] == 'n') ? '\n' : e[i];
    } else {
      inner += e[i];
    }
  }
  Result<WorkflowPacket> packet = WorkflowPacket::Parse(inner);
  if (!packet.ok()) return packet.status();
  m.resume = std::move(packet).value();
  return m;
}

// ---- CompensateThreadMsg ----

std::string CompensateThreadMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance) + 3 * kIntFieldBound,
                BinMsgId::kCompensateThread);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, step);
    w.Int(4, until_join);
    w.Int(5, epoch);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.AddInt("until", until_join);
  w.AddInt("epoch", epoch);
  return w.Finish();
}

Result<CompensateThreadMsg> CompensateThreadMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kCompensateThread, "CompensateThread"));
    CompensateThreadMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("CompensateThread", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.step);
        case TagI(4): return r.IntAs(&m.until_join);
        case TagI(5): return r.Int(&m.epoch);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  CompensateThreadMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  m.until_join =
      static_cast<StepId>(reader.value().GetIntOr("until", kInvalidStep));
  m.epoch = reader.value().GetIntOr("epoch", 0);
  return m;
}

// ---- StateInformationMsg ----

std::string StateInformationMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance) + 2 * kIntFieldBound,
                BinMsgId::kStateInformation);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, reply_to);
    w.Int(4, step);
    w.Finish();
    return out;
  }
  KvWriter w;
  w.AddInt("reply_to", reply_to);
  w.Add("wf", instance.workflow);
  w.AddInt("inst", instance.number);
  w.AddInt("step", step);
  return w.Finish();
}

Result<StateInformationMsg> StateInformationMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kStateInformation, "StateInformation"));
    StateInformationMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("StateInformation", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.reply_to);
        case TagI(4): return r.IntAs(&m.step);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StateInformationMsg m;
  m.reply_to = static_cast<NodeId>(
      reader.value().GetIntOr("reply_to", kInvalidNode));
  m.instance.workflow = reader.value().Get("wf").value_or("");
  m.instance.number = reader.value().GetIntOr("inst", 0);
  m.step = static_cast<StepId>(reader.value().GetIntOr("step", 0));
  return m;
}

// ---- StateInformationReplyMsg ----

std::string StateInformationReplyMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance) + 3 * kIntFieldBound,
                BinMsgId::kStateInformationReply);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, responder);
    w.Int(4, load);
    w.Int(5, step);
    w.Finish();
    return out;
  }
  KvWriter w;
  w.AddInt("responder", responder);
  w.AddInt("load", load);
  w.Add("wf", instance.workflow);
  w.AddInt("inst", instance.number);
  w.AddInt("step", step);
  return w.Finish();
}

Result<StateInformationReplyMsg> StateInformationReplyMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(CheckBinId(payload, BinMsgId::kStateInformationReply,
                                    "StateInformationReply"));
    StateInformationReplyMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("StateInformationReply", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.responder);
        case TagI(4): return r.Int(&m.load);
        case TagI(5): return r.IntAs(&m.step);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StateInformationReplyMsg m;
  m.responder = static_cast<NodeId>(
      reader.value().GetIntOr("responder", kInvalidNode));
  m.load = reader.value().GetIntOr("load", 0);
  m.instance.workflow = reader.value().Get("wf").value_or("");
  m.instance.number = reader.value().GetIntOr("inst", 0);
  m.step = static_cast<StepId>(reader.value().GetIntOr("step", 0));
  return m;
}

// ---- AddRuleMsg ----

std::string AddRuleMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    size_t triggers_bound = trigger_events.empty() ? 0 : 1 + 5;
    for (const std::string& token : trigger_events) {
      triggers_bound += BytesBound(token);
    }
    MsgWriter w(&out,
                InstanceBound(instance) + StrFieldBound(rule_id) +
                    triggers_bound + StrFieldBound(condition_source) +
                    kIntFieldBound,
                BinMsgId::kAddRule);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Str(3, rule_id);
    if (!trigger_events.empty()) {
      w.w().U8(TagI(4));
      w.w().Varint(trigger_events.size());
      for (const std::string& token : trigger_events) w.w().Bytes(token);
    }
    if (!condition_source.empty()) w.Str(5, condition_source);
    w.Int(6, action_step);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.Add("rule", rule_id);
  for (const std::string& token : trigger_events) w.Add("ev", token);
  if (!condition_source.empty()) w.Add("cond", condition_source);
  w.AddInt("action_step", action_step);
  return w.Finish();
}

Result<AddRuleMsg> AddRuleMsg::Parse(const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(CheckBinId(payload, BinMsgId::kAddRule, "AddRule"));
    AddRuleMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("AddRule", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagS(3): return r.Str(&m.rule_id);
        case TagI(4): {
          uint64_t count;
          if (!r.r().Varint(&count) || count > r.r().remaining()) {
            return false;
          }
          m.trigger_events.reserve(m.trigger_events.size() + count);
          for (uint64_t i = 0; i < count; ++i) {
            std::string_view token;
            if (!r.r().Bytes(&token)) return false;
            m.trigger_events.emplace_back(token);
          }
          return true;
        }
        case TagS(5): return r.Str(&m.condition_source);
        case TagI(6): return r.IntAs(&m.action_step);
        default: return false;
      }
    }));
    if (m.rule_id.empty()) {
      return Status::Corruption("AddRule missing rule id");
    }
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  AddRuleMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<std::string> rule = reader.value().GetRequired("rule");
  if (!rule.ok()) return rule.status();
  m.rule_id = std::move(rule).value();
  m.trigger_events = reader.value().GetAll("ev");
  m.condition_source = reader.value().Get("cond").value_or("");
  m.action_step =
      static_cast<StepId>(reader.value().GetIntOr("action_step", 0));
  return m;
}

// ---- AddEventMsg ----

std::string AddEventMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out, InstanceBound(instance) + StrFieldBound(event_token),
                BinMsgId::kAddEvent);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Str(3, event_token);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.Add("event", event_token);
  return w.Finish();
}

Result<AddEventMsg> AddEventMsg::Parse(const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kAddEvent, "AddEvent"));
    AddEventMsg m;
    bool saw_event = false;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("AddEvent", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagS(3): saw_event = true; return r.Str(&m.event_token);
        default: return false;
      }
    }));
    if (!saw_event) return Status::Corruption("AddEvent missing event");
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  AddEventMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<std::string> event = reader.value().GetRequired("event");
  if (!event.ok()) return event.status();
  m.event_token = std::move(event).value();
  return m;
}

// ---- AddPreconditionMsg ----

std::string AddPreconditionMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out,
                InstanceBound(instance) + StrFieldBound(rule_id) +
                    StrFieldBound(event_token),
                BinMsgId::kAddPrecondition);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Str(3, rule_id);
    w.Str(4, event_token);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.Add("rule", rule_id);
  w.Add("event", event_token);
  return w.Finish();
}

Result<AddPreconditionMsg> AddPreconditionMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kAddPrecondition, "AddPrecondition"));
    AddPreconditionMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("AddPrecondition", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagS(3): return r.Str(&m.rule_id);
        case TagS(4): return r.Str(&m.event_token);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  AddPreconditionMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<std::string> rule = reader.value().GetRequired("rule");
  if (!rule.ok()) return rule.status();
  m.rule_id = std::move(rule).value();
  Result<std::string> event = reader.value().GetRequired("event");
  if (!event.ok()) return event.status();
  m.event_token = std::move(event).value();
  return m;
}

// ---- RunProgramMsg ----

std::string RunProgramMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out,
                InstanceBound(instance) + StrFieldBound(program) +
                    8 * kIntFieldBound + MapSectionBound(inputs),
                BinMsgId::kRunProgram);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, step);
    w.Str(4, program);
    w.Int(5, attempt);
    w.Int(6, compensation ? 1 : 0);
    // Same ppm quantization as the kv form, so both codecs round-trip to
    // identical parsed values.
    w.Int(7, static_cast<int64_t>(cost_fraction * 1'000'000));
    w.Int(8, nominal_cost);
    w.Int(9, designated);
    w.Int(10, reply_to);
    w.Int(11, epoch);
    w.Map(12, inputs);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.Add("program", program);
  w.AddInt("attempt", attempt);
  w.AddInt("compensation", compensation ? 1 : 0);
  w.AddInt("cost_fraction_ppm",
           static_cast<int64_t>(cost_fraction * 1'000'000));
  w.AddInt("nominal_cost", nominal_cost);
  w.AddInt("designated", designated);
  w.AddInt("reply_to", reply_to);
  w.AddInt("epoch", epoch);
  WriteDataMap(&w, "i.", inputs);
  return w.Finish();
}

Result<RunProgramMsg> RunProgramMsg::Parse(const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kRunProgram, "RunProgram"));
    RunProgramMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("RunProgram", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.step);
        case TagS(4): return r.Str(&m.program);
        case TagI(5): return r.IntAs(&m.attempt);
        case TagI(6): return r.Flag(&m.compensation);
        case TagI(7): {
          int64_t ppm;
          if (!r.Int(&ppm)) return false;
          m.cost_fraction = static_cast<double>(ppm) / 1'000'000.0;
          return true;
        }
        case TagI(8): return r.Int(&m.nominal_cost);
        case TagI(9): return r.IntAs(&m.designated);
        case TagI(10): return r.IntAs(&m.reply_to);
        case TagI(11): return r.Int(&m.epoch);
        case TagI(12): return r.Map(&m.inputs);
        default: return false;
      }
    }));
    if (m.program.empty()) {
      return Status::Corruption("RunProgram missing program");
    }
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  RunProgramMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  Result<std::string> program = reader.value().GetRequired("program");
  if (!program.ok()) return program.status();
  m.program = std::move(program).value();
  m.attempt = static_cast<int>(reader.value().GetIntOr("attempt", 1));
  m.compensation = reader.value().GetIntOr("compensation", 0) != 0;
  m.cost_fraction =
      static_cast<double>(reader.value().GetIntOr("cost_fraction_ppm",
                                                  1'000'000)) /
      1'000'000.0;
  m.nominal_cost = reader.value().GetIntOr("nominal_cost", 0);
  m.designated = static_cast<NodeId>(
      reader.value().GetIntOr("designated", kInvalidNode));
  m.reply_to = static_cast<NodeId>(
      reader.value().GetIntOr("reply_to", kInvalidNode));
  m.epoch = reader.value().GetIntOr("epoch", 0);
  CREW_RETURN_IF_ERROR(ReadDataMap(reader.value(), "i.", &m.inputs));
  return m;
}

// ---- RunProgramReplyMsg ----

std::string RunProgramReplyMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    MsgWriter w(&out,
                InstanceBound(instance) + 8 * kIntFieldBound +
                    MapSectionBound(outputs),
                BinMsgId::kRunProgramReply);
    w.Str(1, instance.workflow);
    w.Int(2, instance.number);
    w.Int(3, step);
    w.Int(4, ack_only ? 1 : 0);
    w.Int(5, success ? 1 : 0);
    w.Int(6, compensation ? 1 : 0);
    w.Int(7, cost);
    w.Int(8, epoch);
    w.Int(9, agent_load);
    w.Int(10, responder);
    w.Map(11, outputs);
    w.Finish();
    return out;
  }
  KvWriter w;
  WriteInstance(&w, instance);
  w.AddInt("step", step);
  w.AddInt("ack_only", ack_only ? 1 : 0);
  w.AddInt("success", success ? 1 : 0);
  w.AddInt("compensation", compensation ? 1 : 0);
  w.AddInt("cost", cost);
  w.AddInt("epoch", epoch);
  w.AddInt("agent_load", agent_load);
  w.AddInt("responder", responder);
  WriteDataMap(&w, "o.", outputs);
  return w.Finish();
}

Result<RunProgramReplyMsg> RunProgramReplyMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kRunProgramReply, "RunProgramReply"));
    RunProgramReplyMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("RunProgramReply", [&](uint8_t tag) {
      switch (tag) {
        case TagS(1): return r.Str(&m.instance.workflow);
        case TagI(2): return r.Int(&m.instance.number);
        case TagI(3): return r.IntAs(&m.step);
        case TagI(4): return r.Flag(&m.ack_only);
        case TagI(5): return r.Flag(&m.success);
        case TagI(6): return r.Flag(&m.compensation);
        case TagI(7): return r.Int(&m.cost);
        case TagI(8): return r.Int(&m.epoch);
        case TagI(9): return r.Int(&m.agent_load);
        case TagI(10): return r.IntAs(&m.responder);
        case TagI(11): return r.Map(&m.outputs);
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  RunProgramReplyMsg m;
  CREW_RETURN_IF_ERROR(ReadInstance(reader.value(), &m.instance));
  Result<int64_t> step = reader.value().GetInt("step");
  if (!step.ok()) return step.status();
  m.step = static_cast<StepId>(step.value());
  m.ack_only = reader.value().GetIntOr("ack_only", 0) != 0;
  m.success = reader.value().GetIntOr("success", 0) != 0;
  m.compensation = reader.value().GetIntOr("compensation", 0) != 0;
  m.cost = reader.value().GetIntOr("cost", 0);
  m.epoch = reader.value().GetIntOr("epoch", 0);
  m.agent_load = reader.value().GetIntOr("agent_load", 0);
  m.responder = static_cast<NodeId>(
      reader.value().GetIntOr("responder", kInvalidNode));
  CREW_RETURN_IF_ERROR(ReadDataMap(reader.value(), "o.", &m.outputs));
  return m;
}

// ---- PurgeInstancesMsg ----

std::string PurgeInstancesMsg::Serialize() const {
  if (ActivePayloadCodec() == PayloadCodec::kBinary) {
    std::string out;
    size_t bound = committed.empty() ? 0 : 1 + 5;
    for (const InstanceId& id : committed) {
      bound += BytesBound(id.workflow) + kMaxVarintBytes;
    }
    MsgWriter w(&out, bound, BinMsgId::kPurgeInstances);
    if (!committed.empty()) {
      w.w().U8(TagI(1));
      w.w().Varint(committed.size());
      for (const InstanceId& id : committed) {
        w.w().Bytes(id.workflow);
        w.w().Zig(id.number);
      }
    }
    w.Finish();
    return out;
  }
  KvWriter w;
  for (const InstanceId& id : committed) {
    w.Add("c", id.workflow + "#" + std::to_string(id.number));
  }
  return w.Finish();
}

Result<PurgeInstancesMsg> PurgeInstancesMsg::Parse(
    const std::string& payload) {
  if (LooksBinary(payload)) {
    CREW_RETURN_IF_ERROR(
        CheckBinId(payload, BinMsgId::kPurgeInstances, "PurgeInstances"));
    PurgeInstancesMsg m;
    MsgReader r(payload);
    CREW_RETURN_IF_ERROR(r.Drive("PurgeInstances", [&](uint8_t tag) {
      switch (tag) {
        case TagI(1): {
          uint64_t count;
          if (!r.r().Varint(&count) || count > r.r().remaining()) {
            return false;
          }
          m.committed.reserve(m.committed.size() + count);
          for (uint64_t i = 0; i < count; ++i) {
            std::string_view wf;
            int64_t number;
            if (!r.r().Bytes(&wf) || !r.r().Zig(&number)) return false;
            InstanceId id;
            id.workflow.assign(wf);
            id.number = number;
            m.committed.push_back(std::move(id));
          }
          return true;
        }
        default: return false;
      }
    }));
    return m;
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  PurgeInstancesMsg m;
  for (const std::string& raw : reader.value().GetAll("c")) {
    size_t hash = raw.rfind('#');
    if (hash == std::string::npos) {
      return Status::Corruption("bad committed id: " + raw);
    }
    InstanceId id;
    id.workflow = raw.substr(0, hash);
    id.number = strtoll(raw.c_str() + hash + 1, nullptr, 10);
    m.committed.push_back(std::move(id));
  }
  return m;
}

}  // namespace crew::runtime
