#ifndef CREW_COMMON_VALUE_H_
#define CREW_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace crew {

/// A typed workflow data item. Steps read and write named Values; the
/// WFMS treats them opaquely except where conditions reference them.
///
/// The variant order defines Kind numbering; keep in sync.
class Value {
 public:
  enum class Kind { kNull = 0, kBool, kInt, kDouble, kString };

  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(int i) : v_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  Kind kind() const { return static_cast<Kind>(v_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Preconditions: the matching is_*() holds.
  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric widening: int or double -> double. Precondition: is_numeric().
  double NumericValue() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// Truthiness used by rule/arc conditions: false for null, 0, 0.0, "",
  /// false; true otherwise.
  bool Truthy() const;

  /// Deep equality; int 3 == double 3.0.
  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Renders for logs and packet serialization: null, true, 42, 4.5,
  /// "text" (strings are quoted with backslash escaping).
  std::string ToString() const;

  /// Parses the ToString() representation back. Round-trips exactly.
  static Result<Value> Parse(const std::string& text);

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> v_;
};

}  // namespace crew

#endif  // CREW_COMMON_VALUE_H_
