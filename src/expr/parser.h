#ifndef CREW_EXPR_PARSER_H_
#define CREW_EXPR_PARSER_H_

#include <string>

#include "common/status.h"
#include "expr/ast.h"

namespace crew::expr {

/// Parses a condition expression into an AST.
///
/// Grammar (standard precedence, loosest first):
///   or      := and ( ("or" | "||") and )*
///   and     := cmp ( ("and" | "&&") cmp )*
///   cmp     := sum ( ("=="|"!="|"<"|"<="|">"|">=") sum )?
///   sum     := term ( ("+"|"-") term )*
///   term    := unary ( ("*"|"/"|"%") unary )*
///   unary   := ("not"|"!"|"-")* primary
///   primary := literal | ident | ident "(" args ")" | "(" or ")"
///
/// Identifiers may contain dots: S2.O1, WF.I1. Builtin calls:
///   exists(x)   -- x is bound in the environment
///   changed(x)  -- x differs from its value at the step's prior execution
///   abs(e), min(a,b), max(a,b)
Result<NodePtr> ParseExpression(const std::string& source);

}  // namespace crew::expr

#endif  // CREW_EXPR_PARSER_H_
