// Acceptance test for the multi-process backend: real OS processes (one
// crew_node per endpoint, fork/exec'd by the Supervisor) connected by
// Unix-domain sockets run the standard dist workload to completion, and
// every instance's terminal state matches the in-process rt run of the
// identical deployment — including after one node is SIGKILLed mid-run
// and restarted, recovering its durable AGDB from the write-ahead log.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/supervisor.h"
#include "net/testbed.h"
#include "net/topology.h"
#include "net/trace_merge.h"
#include "obs/trace.h"
#include "rt/runtime.h"
#include "runtime/wire.h"

#ifndef CREW_NODE_BIN
#error "net_proc_test requires CREW_NODE_BIN (path to the crew_node binary)"
#endif

namespace crew::net {
namespace {

using runtime::WorkflowState;

constexpr uint64_t kSeed = 42;
constexpr int kAgents = 3;
constexpr int kInstances = 9;
constexpr int kEndpoints = 3;

struct TempDir {
  std::string path;
  TempDir() {
    char buffer[] = "/tmp/crew_net_proc_XXXXXX";
    char* made = mkdtemp(buffer);
    EXPECT_NE(made, nullptr);
    path = made ? made : "/tmp";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TestbedOptions DistOptions() {
  TestbedOptions options;
  options.mode = "dist";
  options.num_agents = kAgents;
  return options;
}

/// The ground truth: the same deployment assembled into one rt::Runtime.
std::map<int, std::string> RunInProcessBaseline() {
  TestbedOptions options = DistOptions();
  Topology topology;
  Endpoint self = Endpoint::Parse("unix:/tmp/unused.sock").value();
  for (NodeId id : Testbed::AllNodes(options)) {
    EXPECT_TRUE(topology.Add(id, self).ok());
  }
  rt::Runtime runtime({.seed = kSeed, .tick_us = 20});
  Testbed testbed(&runtime, topology, self, options);
  runtime.Start();
  std::atomic<int> start_failures{0};
  for (int i = 1; i <= kInstances; ++i) {
    std::string schema = testbed.ScheduleSchema(i);
    runtime.Post(testbed.StartNode(schema, i),
                 [&testbed, &start_failures, schema, i]() {
                   if (!testbed.StartInstance(schema, i).ok()) {
                     start_failures.fetch_add(1);
                   }
                 });
  }
  runtime.Quiesce();
  runtime.Shutdown();
  EXPECT_EQ(start_failures.load(), 0);
  std::map<int, std::string> states;
  for (int i = 1; i <= kInstances; ++i) {
    states[i] = runtime::WorkflowStateName(
        testbed.Terminal({testbed.ScheduleSchema(i), i}));
  }
  return states;
}

/// Spawns the 3-process deployment, optionally SIGKILLs and restarts the
/// last endpoint mid-run, waits for cluster quiescence and returns every
/// instance's terminal state as reported over the control sockets.
std::map<int, std::string> RunProcesses(const std::string& workdir,
                                        bool kill_one) {
  TestbedOptions testbed_options = DistOptions();
  Result<Topology> topology =
      Testbed::UnixTopology(testbed_options, workdir, kEndpoints);
  EXPECT_TRUE(topology.ok()) << topology.status().ToString();
  std::string topology_file = workdir + "/topology.txt";
  EXPECT_TRUE(topology.value().Save(topology_file).ok());

  LaunchOptions options;
  options.node_binary = CREW_NODE_BIN;
  options.topology_file = topology_file;
  options.mode = "dist";
  options.num_agents = kAgents;
  options.num_instances = kInstances;
  options.seed = kSeed;
  options.tick_us = 20;
  options.agdb_dir = workdir + "/agdb";
  mkdir(options.agdb_dir.c_str(), 0755);

  Supervisor supervisor(topology.value(), options);
  Status started = supervisor.StartAll();
  EXPECT_TRUE(started.ok()) << started.ToString();

  if (kill_one) {
    // The last endpoint hosts a workflow agent (the front end is pinned
    // to endpoint 0). Let the run get going, then crash it for real.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Endpoint victim = supervisor.processes().back().endpoint;
    Status killed = supervisor.Kill(victim);
    EXPECT_TRUE(killed.ok()) << killed.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Status restarted = supervisor.Restart(victim);
    EXPECT_TRUE(restarted.ok()) << restarted.ToString();
    // The restarted process must come back reachable.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool reachable = false;
    while (!reachable && std::chrono::steady_clock::now() < deadline) {
      Result<std::string> pong = supervisor.Request(victim, "ping");
      reachable = pong.ok() && pong.value() == "ok";
      if (!reachable) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    EXPECT_TRUE(reachable);
  }

  Status quiesced = supervisor.WaitQuiescent(/*timeout_ms=*/120000);
  EXPECT_TRUE(quiesced.ok()) << quiesced.ToString();

  std::map<int, std::string> states;
  for (int i = 1; i <= kInstances; ++i) {
    // Same deterministic schedule every process derives.
    std::string schema;
    switch (i % 3) {
      case 0: schema = "Doomed"; break;
      case 1: schema = "Good"; break;
      default: schema = "Flaky"; break;
    }
    Result<std::string> state = supervisor.QueryState(schema, i);
    states[i] = state.ok() ? state.value() : state.status().ToString();
  }
  supervisor.ShutdownAll();
  return states;
}

TEST(NetProcTest, ThreeProcessDistMatchesInProcessRun) {
  std::map<int, std::string> baseline = RunInProcessBaseline();
  TempDir dir;
  std::map<int, std::string> processes =
      RunProcesses(dir.path, /*kill_one=*/false);
  ASSERT_EQ(processes.size(), baseline.size());
  for (const auto& [i, state] : baseline) {
    EXPECT_EQ(processes.at(i), state) << "instance " << i;
  }
}

TEST(NetProcTest, KillAndRestartMidRunStillMatchesInProcessRun) {
  std::map<int, std::string> baseline = RunInProcessBaseline();
  TempDir dir;
  std::map<int, std::string> processes =
      RunProcesses(dir.path, /*kill_one=*/true);
  ASSERT_EQ(processes.size(), baseline.size());
  for (const auto& [i, state] : baseline) {
    EXPECT_EQ(processes.at(i), state) << "instance " << i;
  }
}

/// Incarnation-scoped flow ids across a real SIGKILL+restart: the
/// restarted process mints trace ids carrying its new incarnation, so
/// none of its spans can ever pair with a Begin recorded by its
/// pre-crash life (whose ring died with it and whose shard was never
/// written). The merged trace must still stitch at least one live
/// cross-process span out of the surviving shards.
TEST(NetProcTest, TracedKillAndRestartKeepsIncarnationsSeparate) {
  TempDir dir;
  TestbedOptions testbed_options = DistOptions();
  Result<Topology> topology =
      Testbed::UnixTopology(testbed_options, dir.path, kEndpoints);
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();
  std::string topology_file = dir.path + "/topology.txt";
  ASSERT_TRUE(topology.value().Save(topology_file).ok());

  LaunchOptions options;
  options.node_binary = CREW_NODE_BIN;
  options.topology_file = topology_file;
  options.mode = "dist";
  options.num_agents = kAgents;
  options.num_instances = kInstances;
  options.seed = kSeed;
  options.tick_us = 20;
  options.agdb_dir = dir.path + "/agdb";
  mkdir(options.agdb_dir.c_str(), 0755);
  options.trace_dir = dir.path + "/trace";
  mkdir(options.trace_dir.c_str(), 0755);

  Supervisor supervisor(topology.value(), options);
  ASSERT_TRUE(supervisor.StartAll().ok());

  // Live scrape while the cluster runs: every process must answer the
  // `telemetry` control verb with a JSON document (poll — the control
  // sockets come up asynchronously after spawn).
  std::vector<NodeTelemetry> live;
  auto scrape_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (live.size() < static_cast<size_t>(kEndpoints) &&
         std::chrono::steady_clock::now() < scrape_deadline) {
    live = supervisor.CollectTelemetry();
    if (live.size() < static_cast<size_t>(kEndpoints)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_EQ(live.size(), static_cast<size_t>(kEndpoints));
  for (const NodeTelemetry& node : live) {
    EXPECT_NE(node.json.find("\"frames_sent\":"), std::string::npos);
    EXPECT_NE(node.json.find("\"messages\":{\"total\":"), std::string::npos);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Endpoint victim = supervisor.processes().back().endpoint;
  ASSERT_TRUE(supervisor.Kill(victim).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(supervisor.Restart(victim).ok());

  ASSERT_TRUE(supervisor.WaitQuiescent(/*timeout_ms=*/120000).ok());
  supervisor.ShutdownAll();

  // Four incarnations were traced; the SIGKILLed one never wrote its
  // shard (that is the point — its ring died with the process).
  std::vector<std::string> paths = supervisor.TraceShardPaths();
  ASSERT_EQ(paths.size(), static_cast<size_t>(kEndpoints) + 1);
  std::vector<TraceShard> shards;
  for (const std::string& path : paths) {
    Result<TraceShard> shard = LoadTraceShard(path);
    if (shard.ok()) shards.push_back(std::move(shard).value());
  }
  ASSERT_EQ(shards.size(), static_cast<size_t>(kEndpoints));

  const TraceShard* victim_shard = nullptr;
  std::set<uint64_t> all_begin_ids;
  size_t total_begins = 0;
  for (const TraceShard& shard : shards) {
    bool is_victim = shard.endpoint == victim.Address();
    EXPECT_EQ(shard.incarnation, is_victim ? 2u : 1u) << shard.endpoint;
    if (is_victim) victim_shard = &shard;
    for (const obs::TraceRecord& r : shard.records) {
      if (r.phase != obs::TracePhase::kFlowBegin) continue;
      ++total_begins;
      all_begin_ids.insert(r.flow);
      // Minted ids carry the minting incarnation in bits 47..32.
      EXPECT_EQ((r.flow >> 32) & 0xffff, shard.incarnation)
          << shard.endpoint;
    }
  }
  ASSERT_NE(victim_shard, nullptr);
  // Globally unique: a restarted process cannot re-mint a pre-crash id.
  EXPECT_EQ(all_begin_ids.size(), total_begins);

  MergeStats stats;
  std::string merged = MergeTraceShards(shards, &stats);
  EXPECT_EQ(stats.shards, static_cast<size_t>(kEndpoints));
  EXPECT_GE(stats.matched_flows, 1u);
  EXPECT_NE(merged.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(merged.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(merged.find(victim.Address() + "#inc2"), std::string::npos);
}

}  // namespace
}  // namespace crew::net
