#include "model/compiled.h"

#include <algorithm>

namespace crew::model {

Result<CompiledSchemaPtr> CompiledSchema::Compile(Schema schema) {
  auto compiled = std::shared_ptr<CompiledSchema>(new CompiledSchema());
  compiled->schema_ = std::move(schema);
  const Schema& s = compiled->schema_;
  const int n = s.num_steps();

  compiled->forward_out_.resize(n + 1);
  compiled->back_out_.resize(n + 1);
  compiled->forward_in_.resize(n + 1);
  compiled->back_in_.resize(n + 1);
  compiled->required_incoming_.assign(n + 1, 1);
  compiled->is_choice_split_.assign(n + 1, false);
  compiled->terminal_group_of_.assign(n + 1, -1);
  compiled->downstream_.resize(n + 1);
  compiled->comp_dep_sets_of_.resize(n + 1);

  for (const ControlArc& arc : s.control_arcs()) {
    if (arc.is_back_edge) {
      compiled->back_out_[arc.from].push_back(&arc);
      compiled->back_in_[arc.to].push_back(&arc);
    } else {
      compiled->forward_out_[arc.from].push_back(&arc);
      compiled->forward_in_[arc.to].push_back(&arc);
      if (arc.condition) compiled->is_choice_split_[arc.from] = true;
    }
  }

  for (StepId id = 1; id <= n; ++id) {
    const Step& step = s.step(id);
    int in = static_cast<int>(compiled->forward_in_[id].size());
    if (step.join == JoinKind::kAnd) {
      compiled->required_incoming_[id] = std::max(1, in);
    } else {
      compiled->required_incoming_[id] = 1;
    }
    if (compiled->forward_out_[id].empty()) {
      compiled->terminal_steps_.push_back(id);
    }
  }

  const auto& groups = s.terminal_groups();
  for (size_t g = 0; g < groups.size(); ++g) {
    for (StepId id : groups[g]) {
      compiled->terminal_group_of_[id] = static_cast<int>(g);
    }
  }

  // Downstream closure per step, DFS over forward arcs.
  for (StepId id = 1; id <= n; ++id) {
    std::vector<bool> seen(n + 1, false);
    std::vector<StepId> stack = {id};
    seen[id] = true;
    std::vector<StepId>& out = compiled->downstream_[id];
    out.push_back(id);
    while (!stack.empty()) {
      StepId cur = stack.back();
      stack.pop_back();
      for (const ControlArc* arc : compiled->forward_out_[cur]) {
        if (!seen[arc->to]) {
          seen[arc->to] = true;
          out.push_back(arc->to);
          stack.push_back(arc->to);
        }
      }
    }
    std::sort(out.begin(), out.end());
  }

  const auto& sets = s.comp_dep_sets();
  for (size_t i = 0; i < sets.size(); ++i) {
    for (StepId id : sets[i].steps) {
      compiled->comp_dep_sets_of_[id].push_back(static_cast<int>(i));
    }
  }

  // Topological order (forward graph; builder guaranteed acyclic).
  {
    std::vector<int> in_degree(n + 1, 0);
    for (StepId id = 1; id <= n; ++id) {
      in_degree[id] = static_cast<int>(compiled->forward_in_[id].size());
    }
    std::vector<StepId> frontier;
    for (StepId id = 1; id <= n; ++id) {
      if (in_degree[id] == 0) frontier.push_back(id);
    }
    // Lowest id first for determinism.
    std::sort(frontier.rbegin(), frontier.rend());
    while (!frontier.empty()) {
      StepId cur = frontier.back();
      frontier.pop_back();
      compiled->topo_order_.push_back(cur);
      for (const ControlArc* arc : compiled->forward_out_[cur]) {
        if (--in_degree[arc->to] == 0) {
          frontier.push_back(arc->to);
          std::sort(frontier.rbegin(), frontier.rend());
        }
      }
    }
    if (static_cast<int>(compiled->topo_order_.size()) != n) {
      return Status::Internal("cycle slipped through builder validation");
    }
  }

  return CompiledSchemaPtr(compiled);
}

bool CompiledSchema::IsDownstream(StepId id, StepId maybe_down) const {
  const std::vector<StepId>& d = downstream_[id];
  return std::binary_search(d.begin(), d.end(), maybe_down);
}

std::vector<StepId> CompiledSchema::UpstreamOf(StepId id) const {
  std::vector<StepId> out;
  for (StepId candidate = 1; candidate <= schema_.num_steps();
       ++candidate) {
    if (candidate != id && IsDownstream(candidate, id)) {
      out.push_back(candidate);
    }
  }
  return out;
}

}  // namespace crew::model
