#ifndef CREW_RUNTIME_RULEGEN_H_
#define CREW_RUNTIME_RULEGEN_H_

#include <string>
#include <vector>

#include "model/compiled.h"
#include "rules/engine.h"

namespace crew::runtime {

/// Instantiates the Event-Condition-Action rules that fire a step, from
/// the compiled schema (the paper's "instances of the appropriate rules
/// are created for each workflow instance", §3). Shared by all three
/// control architectures.
///
/// Generated rules per step S:
///  - start step: id "exec.S<k>.start", trigger {WF.start};
///  - AND-join:   id "exec.S<k>.join", triggers = done events of every
///                incoming forward arc source (+ data-arc producers);
///  - otherwise:  one rule per incoming forward arc j->k:
///                id "exec.S<k>.via.S<j>", trigger {S<j>.done} (+ data
///                producers), condition = the arc's condition (an else
///                arc gets the conjunction of its siblings' negations);
///  - loop back-edges j->k: id "exec.S<k>.loop.S<j>", trigger
///                {S<j>.done}, condition = the back arc's condition.
std::vector<rules::Rule> MakeStepRules(const model::CompiledSchema& schema,
                                       StepId step);

/// All rules for every step of the schema.
std::vector<rules::Rule> MakeAllRules(const model::CompiledSchema& schema);

/// Rule-id prefix for the rules that fire `step` ("exec.S<k>."): used by
/// AddPrecondition() to target every firing rule of a step.
std::string StepRulePrefix(StepId step);

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_RULEGEN_H_
