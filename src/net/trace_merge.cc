#include "net/trace_merge.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "runtime/kv.h"

namespace crew::net {
namespace {

/// Shard-file field escaping: '|' separates fields and the kv layer
/// splits on newlines, so both (and the escape char itself) are
/// percent-encoded. Everything else passes through.
std::string EscapeField(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case '|':
        out += "%7C";
        break;
      case '\n':
        out += "%0A";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeField(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      if (text.compare(i + 1, 2, "25") == 0) {
        out += '%';
        i += 2;
        continue;
      }
      if (text.compare(i + 1, 2, "7C") == 0) {
        out += '|';
        i += 2;
        continue;
      }
      if (text.compare(i + 1, 2, "0A") == 0) {
        out += '\n';
        i += 2;
        continue;
      }
    }
    out += text[i];
  }
  return out;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    size_t bar = line.find('|', start);
    if (bar == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, bar - start));
    start = bar + 1;
  }
}

int64_t ParseI64(const std::string& text) {
  return static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10));
}

uint64_t ParseU64(const std::string& text) {
  return static_cast<uint64_t>(std::strtoull(text.c_str(), nullptr, 10));
}

std::string ShardLabel(const TraceShard& shard) {
  return shard.endpoint + "#inc" + std::to_string(shard.incarnation);
}

Status WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Unavailable("cannot open " + path);
  out << body;
  out.flush();
  if (!out) return Status::Unavailable("short write to " + path);
  return Status::OK();
}

/// Estimated per-shard clock offsets (µs relative to the reference),
/// shared by the Chrome and JSONL renderers.
std::vector<int64_t> EstimateOffsets(const std::vector<TraceShard>& shards,
                                     MergeStats* stats) {
  size_t n = shards.size();
  // delta[i][j]: minimum observed (recv_at_i - sent_by_j) in µs, from
  // shard i's HELLO samples of shard j. INT64_MAX = no sample.
  constexpr int64_t kNone = std::numeric_limits<int64_t>::max();
  std::vector<std::vector<int64_t>> delta(n, std::vector<int64_t>(n, kNone));
  for (size_t i = 0; i < n; ++i) {
    for (const ClockSample& sample : shards[i].clocks) {
      for (size_t j = 0; j < n; ++j) {
        if (j == i || shards[j].endpoint != sample.peer ||
            shards[j].incarnation != sample.peer_incarnation) {
          continue;
        }
        int64_t d = sample.local_recv_ticks * shards[i].tick_us -
                    sample.remote_sent_ticks * shards[j].tick_us;
        delta[i][j] = std::min(delta[i][j], d);
      }
    }
  }

  // Reference: lexicographically smallest (endpoint, incarnation).
  size_t ref = 0;
  for (size_t i = 1; i < n; ++i) {
    const TraceShard& a = shards[i];
    const TraceShard& b = shards[ref];
    if (a.endpoint < b.endpoint ||
        (a.endpoint == b.endpoint && a.incarnation < b.incarnation)) {
      ref = i;
    }
  }

  // BFS from the reference over every shard pair with at least one
  // directional sample. offset[i] = clock_i - clock_ref in µs; for an
  // edge i -> j, clock_j - clock_i is the NTP midpoint when both
  // directions were sampled, the single direction's minimum gap
  // otherwise (zero-latency assumption).
  std::vector<int64_t> offset(n, 0);
  std::vector<bool> placed(n, false);
  placed[ref] = true;
  std::vector<size_t> frontier{ref};
  while (!frontier.empty()) {
    std::vector<size_t> next;
    for (size_t i : frontier) {
      for (size_t j = 0; j < n; ++j) {
        if (placed[j]) continue;
        int64_t fwd = delta[j][i];  // j received from i: clock_j - clock_i
        int64_t rev = delta[i][j];  // i received from j
        int64_t edge;
        if (fwd != kNone && rev != kNone) {
          edge = (fwd - rev) / 2;
        } else if (fwd != kNone) {
          edge = fwd;
        } else if (rev != kNone) {
          edge = -rev;
        } else {
          continue;
        }
        offset[j] = offset[i] + edge;
        placed[j] = true;
        next.push_back(j);
      }
    }
    frontier = std::move(next);
  }

  if (stats != nullptr) {
    stats->shards = n;
    stats->reference = n == 0 ? "" : ShardLabel(shards[ref]);
    for (size_t i = 0; i < n; ++i) {
      stats->offsets_us[ShardLabel(shards[i])] = offset[i];
    }
  }
  return offset;
}

/// One record placed on the merged timeline.
struct Placed {
  size_t shard = 0;
  const obs::TraceRecord* rec = nullptr;
  int64_t ts_us = 0;  ///< aligned, pre-shift
};

/// Aligns every record and computes the flow pairing + the shift that
/// puts the earliest event at t=0.
std::vector<Placed> PlaceRecords(const std::vector<TraceShard>& shards,
                                 const std::vector<int64_t>& offset,
                                 MergeStats* stats) {
  std::vector<Placed> placed;
  std::map<uint64_t, int64_t> flow_begin_ts;
  std::map<uint64_t, bool> flow_has_end;
  for (size_t i = 0; i < shards.size(); ++i) {
    for (const obs::TraceRecord& r : shards[i].records) {
      Placed p;
      p.shard = i;
      p.rec = &r;
      p.ts_us = r.time * shards[i].tick_us - offset[i];
      if (r.phase == obs::TracePhase::kFlowBegin) {
        if (stats != nullptr) ++stats->flow_begins;
        auto it = flow_begin_ts.find(r.flow);
        if (it == flow_begin_ts.end() || p.ts_us < it->second) {
          flow_begin_ts[r.flow] = p.ts_us;
        }
      } else if (r.phase == obs::TracePhase::kFlowEnd) {
        if (stats != nullptr) ++stats->flow_ends;
        flow_has_end[r.flow] = true;
      }
      placed.push_back(p);
    }
  }
  // Clock estimation is approximate: clamp a flow end that aligned
  // before its begin up to the begin, so no span renders negative.
  for (Placed& p : placed) {
    if (p.rec->phase != obs::TracePhase::kFlowEnd) continue;
    auto it = flow_begin_ts.find(p.rec->flow);
    if (it != flow_begin_ts.end() && p.ts_us < it->second) {
      p.ts_us = it->second;
    }
  }
  if (stats != nullptr) {
    for (const auto& [flow, begin_ts] : flow_begin_ts) {
      if (flow_has_end.count(flow) != 0) ++stats->matched_flows;
    }
    stats->events = placed.size();
  }
  int64_t min_ts = 0;
  bool any = false;
  for (const Placed& p : placed) {
    if (!any || p.ts_us < min_ts) min_ts = p.ts_us;
    any = true;
  }
  for (Placed& p : placed) p.ts_us -= min_ts;
  std::stable_sort(placed.begin(), placed.end(),
                   [](const Placed& a, const Placed& b) {
                     return a.ts_us < b.ts_us;
                   });
  return placed;
}

std::string MergedDisplayName(const obs::TraceRecord& r) {
  std::string name = r.name;
  if (!r.instance.workflow.empty() || r.instance.number != 0) {
    name += " " + r.instance.ToString();
  }
  if (r.step != kInvalidStep) name += " S" + std::to_string(r.step);
  return name;
}

void AppendMergedArgs(std::string* out, const obs::TraceRecord& r,
                      const TraceShard& shard) {
  *out += "\"args\":{\"endpoint\":\"" + obs::JsonEscape(shard.endpoint) +
          "\",\"incarnation\":" + std::to_string(shard.incarnation) +
          ",\"instance\":\"" + obs::JsonEscape(r.instance.ToString()) +
          "\",\"step\":" + std::to_string(r.step) + ",\"category\":\"" +
          obs::TraceCategoryLabel(r.category) + "\"";
  if (r.value != 0) *out += ",\"value\":" + std::to_string(r.value);
  if (!r.detail.empty()) {
    *out += ",\"detail\":\"" + obs::JsonEscape(r.detail) + "\"";
  }
  *out += "}";
}

}  // namespace

TraceShard ShardFromRing(const obs::RingBufferTracer& ring,
                         std::string endpoint, uint64_t incarnation,
                         int64_t tick_us, std::vector<ClockSample> clocks) {
  TraceShard shard;
  shard.endpoint = std::move(endpoint);
  shard.incarnation = incarnation;
  shard.tick_us = tick_us;
  shard.clocks = std::move(clocks);
  shard.node_names = ring.node_names();
  shard.records.assign(ring.records().begin(), ring.records().end());
  return shard;
}

Status WriteTraceShard(const TraceShard& shard, const std::string& path) {
  runtime::KvWriter kv;
  kv.Add("endpoint", shard.endpoint);
  kv.AddInt("incarnation", static_cast<int64_t>(shard.incarnation));
  kv.AddInt("tick_us", shard.tick_us);
  for (const ClockSample& c : shard.clocks) {
    std::string line = EscapeField(c.peer) + "|" +
                       std::to_string(c.peer_incarnation) + "|" +
                       std::to_string(c.remote_sent_ticks) + "|" +
                       std::to_string(c.local_recv_ticks) + "|" +
                       std::to_string(c.count);
    kv.Add("clock", line);
  }
  for (const auto& [node, name] : shard.node_names) {
    kv.Add("node_name", std::to_string(node) + "|" + EscapeField(name));
  }
  for (const obs::TraceRecord& r : shard.records) {
    std::string line =
        std::to_string(r.time) + "|" + std::to_string(r.dur) + "|" +
        std::to_string(static_cast<int>(r.phase)) + "|" +
        std::to_string(static_cast<int>(r.kind)) + "|" +
        std::to_string(r.node) + "|" + EscapeField(r.instance.workflow) +
        "|" + std::to_string(r.instance.number) + "|" +
        std::to_string(r.step) + "|" + std::to_string(r.category) + "|" +
        std::to_string(r.value) + "|" + std::to_string(r.flow) + "|" +
        EscapeField(r.name) + "|" + EscapeField(r.detail);
    kv.Add("rec", line);
  }
  return WriteFile(path, kv.Finish());
}

Result<TraceShard> LoadTraceShard(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Unavailable("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<runtime::KvReader> reader = runtime::KvReader::Parse(buffer.str());
  if (!reader.ok()) return reader.status();
  const runtime::KvReader& kv = reader.value();

  TraceShard shard;
  Result<std::string> endpoint = kv.GetRequired("endpoint");
  if (!endpoint.ok()) {
    return Status::Corruption("shard " + path + " missing endpoint");
  }
  shard.endpoint = std::move(endpoint).value();
  shard.incarnation = static_cast<uint64_t>(kv.GetIntOr("incarnation", 1));
  shard.tick_us = kv.GetIntOr("tick_us", 50);
  if (shard.tick_us <= 0) {
    return Status::Corruption("shard " + path + " has bad tick_us");
  }
  for (const std::string& line : kv.GetAll("clock")) {
    std::vector<std::string> f = SplitFields(line);
    if (f.size() != 5) {
      return Status::Corruption("shard " + path + " has bad clock line");
    }
    ClockSample c;
    c.peer = UnescapeField(f[0]);
    c.peer_incarnation = ParseU64(f[1]);
    c.remote_sent_ticks = ParseI64(f[2]);
    c.local_recv_ticks = ParseI64(f[3]);
    c.count = ParseI64(f[4]);
    shard.clocks.push_back(std::move(c));
  }
  for (const std::string& line : kv.GetAll("node_name")) {
    std::vector<std::string> f = SplitFields(line);
    if (f.size() != 2) {
      return Status::Corruption("shard " + path + " has bad node_name line");
    }
    shard.node_names[static_cast<NodeId>(ParseI64(f[0]))] =
        UnescapeField(f[1]);
  }
  for (const std::string& line : kv.GetAll("rec")) {
    std::vector<std::string> f = SplitFields(line);
    if (f.size() != 13) {
      return Status::Corruption("shard " + path + " has bad rec line");
    }
    obs::TraceRecord r;
    r.time = ParseI64(f[0]);
    r.dur = ParseI64(f[1]);
    r.phase = static_cast<obs::TracePhase>(ParseI64(f[2]));
    r.kind = static_cast<obs::SpanKind>(ParseI64(f[3]));
    r.node = static_cast<NodeId>(ParseI64(f[4]));
    r.instance.workflow = UnescapeField(f[5]);
    r.instance.number = ParseI64(f[6]);
    r.step = static_cast<StepId>(ParseI64(f[7]));
    r.category = static_cast<int>(ParseI64(f[8]));
    r.value = ParseI64(f[9]);
    r.flow = ParseU64(f[10]);
    r.name = UnescapeField(f[11]);
    r.detail = UnescapeField(f[12]);
    shard.records.push_back(std::move(r));
  }
  return shard;
}

std::string MergeTraceShards(const std::vector<TraceShard>& shards,
                             MergeStats* stats) {
  if (stats != nullptr) *stats = MergeStats{};
  std::vector<int64_t> offset = EstimateOffsets(shards, stats);
  std::vector<Placed> placed = PlaceRecords(shards, offset, stats);

  std::string out;
  out.reserve(placed.size() * 200 + 2048);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  for (size_t i = 0; i < shards.size(); ++i) {
    const TraceShard& shard = shards[i];
    int64_t pid = static_cast<int64_t>(i) + 1;
    comma();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           obs::JsonEscape(ShardLabel(shard)) + "\"}}";
    std::map<NodeId, std::string> tracks = shard.node_names;
    for (const obs::TraceRecord& r : shard.records) {
      if (r.node != kInvalidNode && tracks.find(r.node) == tracks.end()) {
        tracks[r.node] = "node-" + std::to_string(r.node);
      }
    }
    for (const auto& [node, name] : tracks) {
      comma();
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":" + std::to_string(node) +
             ",\"args\":{\"name\":\"" + obs::JsonEscape(name) + "\"}}";
    }
  }

  for (const Placed& p : placed) {
    const obs::TraceRecord& r = *p.rec;
    const TraceShard& shard = shards[p.shard];
    int64_t pid = static_cast<int64_t>(p.shard) + 1;
    NodeId tid = r.node == kInvalidNode ? 0 : r.node;
    std::string cat = std::string(obs::SpanKindName(r.kind)) + "," +
                      obs::TraceCategoryLabel(r.category);
    comma();
    if (r.phase == obs::TracePhase::kComplete) {
      int64_t dur_us = std::max<int64_t>(r.dur, 0) * shard.tick_us;
      out += "{\"name\":\"" + obs::JsonEscape(MergedDisplayName(r)) +
             "\",\"cat\":\"" + cat + "\",\"ph\":\"X\",\"ts\":" +
             std::to_string(p.ts_us) + ",\"dur\":" + std::to_string(dur_us) +
             ",\"pid\":" + std::to_string(pid) + ",\"tid\":" +
             std::to_string(tid) + ",";
      AppendMergedArgs(&out, r, shard);
      out += "}";
    } else if (r.phase == obs::TracePhase::kFlowBegin ||
               r.phase == obs::TracePhase::kFlowEnd) {
      // The two halves — recorded in different processes — carry the
      // same flow id, name and categories, which is exactly what the
      // async-event ("b"/"e") matching keys on: the viewer draws one
      // span from the sender's Begin to the receiver's End.
      char id[24];
      std::snprintf(id, sizeof(id), "0x%" PRIx64, r.flow);
      out += "{\"name\":\"" + obs::JsonEscape(r.name) + "\",\"cat\":\"" +
             cat + "\",\"ph\":\"" +
             (r.phase == obs::TracePhase::kFlowBegin ? "b" : "e") +
             "\",\"id\":\"" + id + "\",\"ts\":" + std::to_string(p.ts_us) +
             ",\"pid\":" + std::to_string(pid) + ",\"tid\":" +
             std::to_string(tid) + ",";
      AppendMergedArgs(&out, r, shard);
      out += "}";
    } else {
      out += "{\"name\":\"" + obs::JsonEscape(MergedDisplayName(r)) +
             "\",\"cat\":\"" + cat + "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
             std::to_string(p.ts_us) + ",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(tid) + ",";
      AppendMergedArgs(&out, r, shard);
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

Status WriteMergedTrace(const std::vector<TraceShard>& shards,
                        const std::string& path, MergeStats* stats) {
  return WriteFile(path, MergeTraceShards(shards, stats));
}

std::string MergedJsonl(const std::vector<TraceShard>& shards,
                        MergeStats* stats) {
  if (stats != nullptr) *stats = MergeStats{};
  std::vector<int64_t> offset = EstimateOffsets(shards, stats);
  std::vector<Placed> placed = PlaceRecords(shards, offset, stats);
  std::string out;
  out.reserve(placed.size() * 160);
  for (const Placed& p : placed) {
    const obs::TraceRecord& r = *p.rec;
    const TraceShard& shard = shards[p.shard];
    out += "{\"ts_us\":" + std::to_string(p.ts_us) + ",\"endpoint\":\"" +
           obs::JsonEscape(shard.endpoint) + "\",\"incarnation\":" +
           std::to_string(shard.incarnation);
    if (r.phase == obs::TracePhase::kComplete) {
      out += ",\"dur_us\":" +
             std::to_string(std::max<int64_t>(r.dur, 0) * shard.tick_us);
    }
    if (r.phase == obs::TracePhase::kFlowBegin ||
        r.phase == obs::TracePhase::kFlowEnd) {
      char flow[48];
      std::snprintf(
          flow, sizeof(flow), ",\"ph\":\"%s\",\"flow\":\"0x%" PRIx64 "\"",
          r.phase == obs::TracePhase::kFlowBegin ? "fb" : "fe", r.flow);
      out += flow;
    }
    out += ",\"kind\":\"" + std::string(obs::SpanKindName(r.kind)) +
           "\",\"name\":\"" + obs::JsonEscape(r.name) + "\",\"node\":" +
           std::to_string(r.node) + ",\"category\":\"" +
           obs::TraceCategoryLabel(r.category) + "\"";
    if (r.value != 0) out += ",\"value\":" + std::to_string(r.value);
    if (!r.detail.empty()) {
      out += ",\"detail\":\"" + obs::JsonEscape(r.detail) + "\"";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace crew::net
