#ifndef CREW_SIM_CONTEXT_H_
#define CREW_SIM_CONTEXT_H_

#include "common/rng.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/network.h"

namespace crew::sim {

/// Execution context handed to one node (engine, agent, front end). It
/// bundles the backend services a node touches while running: transport,
/// deferred execution, metrics, tracing, randomness and the clock.
///
/// The virtual-time Simulator is one Context shared by every node (one
/// thread, one clock, one metrics ledger). The live runtime (rt::Runtime)
/// vends a *distinct* Context per node whose scheduler targets that
/// node's worker thread, whose metrics land in a per-node shard, and
/// whose RNG is an independent per-node stream — so the same engine code
/// is single-threaded with respect to its own state on both backends.
class Context {
 public:
  virtual ~Context() = default;

  virtual Transport& network() = 0;
  virtual Scheduler& queue() = 0;
  virtual Metrics& metrics() = 0;
  /// Never null; defaults to the no-op tracer.
  virtual obs::Tracer& tracer() = 0;
  virtual Rng& rng() = 0;
  /// Current time in ticks: virtual under sim, scaled monotonic wall
  /// clock under rt. Only differences of now() values are meaningful to
  /// node code (timeout windows, span durations).
  virtual Time now() const = 0;
};

/// Vends per-node execution contexts; the systems (central/parallel/dist)
/// are constructed over a Backend and wire each node they create to
/// `ContextFor(node)`. The Simulator returns itself for every node; the
/// live runtime creates one worker cell per node. All ContextFor calls
/// happen during system assembly, before any node executes.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual Context* ContextFor(NodeId id) = 0;
};

}  // namespace crew::sim

#endif  // CREW_SIM_CONTEXT_H_
