// crew_node: one endpoint of a multi-process deployment. Loads the
// shared topology, assembles the engines/agents this endpoint hosts
// inside an rt::Runtime, and serves their traffic over a SocketTransport
// — the same unmodified workflow code that runs under sim and rt, with
// process boundaries between nodes. A control socket answers quiescence
// and terminal-state queries and accepts a clean-exit request; killing
// the process instead exercises crash recovery (restart with a bumped
// --incarnation and the durable AGDB replays before the node rejoins).
//
// Spawned by crew_launch / Supervisor; see --help for flags.

#include <sys/stat.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include <thread>

#include "common/logging.h"
#include "common/strings.h"
#include "net/control.h"
#include "net/node.h"
#include "net/telemetry.h"
#include "net/testbed.h"
#include "net/trace_merge.h"
#include "obs/trace.h"
#include "runtime/codec.h"
#include "runtime/wire.h"

namespace crew::net {

struct Flags {
  std::string topology;
  std::string endpoint;
  std::string control;
  std::string mode = "dist";
  int engines = 2;
  int agents = 3;
  int instances = 9;
  uint64_t seed = 42;
  int64_t tick_us = 20;
  int64_t pending_timeout = 5000;
  std::string agdb;
  uint64_t incarnation = 1;
  bool drive = true;
  std::string trace_shard;
  int64_t telemetry_interval_ms = 200;
  std::string codec = "binary";
  std::string placement = "static";
  int classes = 0;
  std::string purge = "targeted";
};

void Usage() {
  std::fprintf(
      stderr,
      "crew_node --topology <file> --endpoint <address> [options]\n"
      "  --control <path>        control socket (default <endpoint>.ctl)\n"
      "  --mode central|parallel|dist (default dist)\n"
      "  --engines N --agents N --instances N\n"
      "  --seed N --tick-us N --pending-timeout N\n"
      "  --agdb <dir>            durable AGDB directory (dist)\n"
      "  --incarnation N         bump on restart after a crash\n"
      "  --drive 0|1             start locally-owned workflow instances\n"
      "  --trace-shard <path>    enable tracing; write the trace shard\n"
      "                          here on clean exit (crew_trace_merge\n"
      "                          joins shards into one Chrome trace)\n"
      "  --telemetry-interval-ms N  metrics snapshot cadence (0 = off;\n"
      "                          default 200)\n"
      "  --codec kv|binary       wire codec for payloads and frames\n"
      "                          (default binary; receivers always\n"
      "                          accept both, so nodes may differ)\n"
      "  --placement static|rr|hash|least  instance placement policy\n"
      "  --classes N             sweep workload: N all-committing\n"
      "                          classes Wf0..Wf<N-1> (0 = mixed)\n"
      "  --purge targeted|broadcast  end-of-instance purge scope\n");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--topology" && (value = next())) {
      flags->topology = value;
    } else if (arg == "--endpoint" && (value = next())) {
      flags->endpoint = value;
    } else if (arg == "--control" && (value = next())) {
      flags->control = value;
    } else if (arg == "--mode" && (value = next())) {
      flags->mode = value;
    } else if (arg == "--engines" && (value = next())) {
      flags->engines = std::atoi(value);
    } else if (arg == "--agents" && (value = next())) {
      flags->agents = std::atoi(value);
    } else if (arg == "--instances" && (value = next())) {
      flags->instances = std::atoi(value);
    } else if (arg == "--seed" && (value = next())) {
      flags->seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--tick-us" && (value = next())) {
      flags->tick_us = std::atoll(value);
    } else if (arg == "--pending-timeout" && (value = next())) {
      flags->pending_timeout = std::atoll(value);
    } else if (arg == "--agdb" && (value = next())) {
      flags->agdb = value;
    } else if (arg == "--incarnation" && (value = next())) {
      flags->incarnation = std::strtoull(value, nullptr, 10);
    } else if (arg == "--drive" && (value = next())) {
      flags->drive = std::atoi(value) != 0;
    } else if (arg == "--trace-shard" && (value = next())) {
      flags->trace_shard = value;
    } else if (arg == "--telemetry-interval-ms" && (value = next())) {
      flags->telemetry_interval_ms = std::atoll(value);
    } else if (arg == "--codec" && (value = next())) {
      flags->codec = value;
    } else if (arg == "--placement" && (value = next())) {
      flags->placement = value;
    } else if (arg == "--classes" && (value = next())) {
      flags->classes = std::atoi(value);
    } else if (arg == "--purge" && (value = next())) {
      flags->purge = value;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !flags->topology.empty() && !flags->endpoint.empty();
}

int Run(const Flags& flags) {
  Result<Topology> topology = Topology::Load(flags.topology);
  if (!topology.ok()) {
    std::fprintf(stderr, "crew_node: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }
  Result<Endpoint> self = Endpoint::Parse(flags.endpoint);
  if (!self.ok()) {
    std::fprintf(stderr, "crew_node: %s\n",
                 self.status().ToString().c_str());
    return 1;
  }
  if (!flags.agdb.empty()) {
    mkdir(flags.agdb.c_str(), 0755);  // EEXIST is fine
  }

  rt::RuntimeOptions runtime_options;
  runtime_options.seed = flags.seed;
  runtime_options.tick_us = flags.tick_us;
  // Ring sink for the trace shard. Only installed when a shard path was
  // given: an installed (enabled) tracer also switches the transport
  // into assigning cross-process trace ids on every Ship.
  obs::RingBufferTracer ring;
  if (!flags.trace_shard.empty()) runtime_options.tracer = &ring;
  runtime::PayloadCodec codec;
  if (!runtime::ParsePayloadCodecName(flags.codec, &codec)) {
    std::fprintf(stderr, "crew_node: unknown codec '%s'\n",
                 flags.codec.c_str());
    return 1;
  }
  runtime::SetPayloadCodec(codec);  // payload serialization (wire.h)
  SocketTransportOptions transport_options;
  transport_options.incarnation = flags.incarnation;
  transport_options.codec = codec;  // frame envelopes

  NetNode node(topology.value(), self.value(), runtime_options,
               transport_options);
  Status bound = node.Bind();
  if (!bound.ok()) {
    std::fprintf(stderr, "crew_node: %s\n", bound.ToString().c_str());
    return 1;
  }

  TestbedOptions testbed_options;
  testbed_options.mode = flags.mode;
  testbed_options.num_engines = flags.engines;
  testbed_options.num_agents = flags.agents;
  testbed_options.pending_timeout = flags.pending_timeout;
  testbed_options.agdb_dir = flags.agdb;
  testbed_options.placement = flags.placement;
  testbed_options.num_classes = flags.classes;
  testbed_options.purge = flags.purge;
  Testbed testbed(&node.runtime(), topology.value(), self.value(),
                  testbed_options);
  testbed.InstallRecoveryHooks(&node.runtime());

  std::mutex exit_mu;
  std::condition_variable exit_cv;
  bool exit_requested = false;

  // Open-loop drivers started by the "drive" control verb. Guarded by
  // drive_mu until the control server stops; joined before shutdown.
  std::mutex drive_mu;
  std::vector<std::thread> drivers;

  // One process-health document: schedule the per-cell metrics copies
  // (bounded — a wedged worker costs the wait, never a hang), then
  // render metrics + transport + runtime gauges as one JSON object.
  auto telemetry_json = [&](std::chrono::milliseconds wait) {
    sim::Metrics metrics = node.runtime().SampleMetrics(wait);
    return NodeTelemetryJson(self.value().Address(), flags.incarnation,
                             metrics, node.runtime().Stats(),
                             node.transport().Stats(),
                             node.transport().PeerStats());
  };

  // Control handler: runs on the control thread. State reads are
  // marshalled onto the owning node's worker via Post, so they are
  // ordered against that node's message processing.
  auto handler = [&](const std::string& request) -> std::string {
    std::vector<std::string> words;
    for (const std::string& w : Split(request, ' ')) {
      if (!w.empty()) words.push_back(w);
    }
    if (words.empty()) return "err empty";
    if (words[0] == "ping") return "ok";
    if (words[0] == "quiet") {
      return std::string(node.LooksQuiet() ? "1" : "0") + " " +
             std::to_string(node.AdmittedWork());
    }
    if (words[0] == "telemetry") {
      return telemetry_json(std::chrono::milliseconds(300));
    }
    if (words[0] == "status" && words.size() == 3) {
      // Reply: "<state> <telemetry json>" — the workflow answer first
      // (callers parse the first space-separated token), the node's
      // health document after it. The snapshot merge is cheap and
      // non-blocking; the background sampler keeps it fresh.
      std::string telemetry = NodeTelemetryJson(
          self.value().Address(), flags.incarnation,
          node.runtime().LatestMetricsSnapshot(), node.runtime().Stats(),
          node.transport().Stats(), node.transport().PeerStats());
      InstanceId instance{words[1], std::atoll(words[2].c_str())};
      if (!testbed.Authoritative(instance)) return "n/a " + telemetry;
      NodeId authority = testbed.AuthorityNode(instance);
      // Bounded wait, shared promise: if the worker is wedged and the
      // task never runs, the control thread must answer (and stay able
      // to serve 'exit') rather than block forever — and the task, if
      // it runs late, must not touch a dead stack frame.
      auto promise =
          std::make_shared<std::promise<runtime::WorkflowState>>();
      std::future<runtime::WorkflowState> future = promise->get_future();
      node.runtime().Post(authority, [promise, &testbed, instance]() {
        promise->set_value(testbed.Terminal(instance));
      });
      if (future.wait_for(std::chrono::seconds(5)) !=
          std::future_status::ready) {
        return "err status timeout";
      }
      return std::string(runtime::WorkflowStateName(future.get())) + " " +
             telemetry;
    }
    if (words[0] == "drive" && (words.size() == 2 || words.size() == 3)) {
      // "drive <count> [rate_per_s]": open-loop workload injection.
      // Starts instances 1..count whose start node this endpoint hosts,
      // paced at `rate` starts/s (0 or absent = as fast as possible),
      // and replies immediately — callers observe completion via
      // "quiet"/WaitQuiescent.
      int64_t count = std::atoll(words[1].c_str());
      int64_t rate =
          words.size() == 3 ? std::atoll(words[2].c_str()) : 0;
      if (count <= 0) return "err drive count";
      std::lock_guard<std::mutex> lock(drive_mu);
      drivers.emplace_back([&testbed, &node, &exit_mu, &exit_cv,
                            &exit_requested, count, rate]() {
        auto next_at = std::chrono::steady_clock::now();
        for (int64_t i = 1; i <= count; ++i) {
          std::string schema =
              testbed.ScheduleSchema(static_cast<int>(i));
          NodeId start_node = testbed.StartNode(schema, i);
          if (!testbed.Hosts(start_node)) continue;
          if (rate > 0) {
            next_at += std::chrono::nanoseconds(1000000000 / rate);
            std::unique_lock<std::mutex> wait_lock(exit_mu);
            if (exit_cv.wait_until(wait_lock, next_at, [&]() {
                  return exit_requested;
                })) {
              return;
            }
          } else {
            std::lock_guard<std::mutex> check_lock(exit_mu);
            if (exit_requested) return;
          }
          node.runtime().Post(start_node, [&testbed, schema, i]() {
            Status status = testbed.StartInstance(schema, i);
            if (!status.ok()) {
              CREW_LOG(Error) << "drive " << schema << "#" << i
                              << " failed: " << status.ToString();
            }
          });
        }
      });
      return "ok " + std::to_string(count);
    }
    if (words[0] == "feed" && words.size() >= 2) {
      // "feed n<id>:<load>[,n<id>:<load>...]": cluster load samples for
      // the least-loaded placement policy (no-op under other policies).
      runtime::PlacementPolicy* placement = testbed.placement();
      if (placement != nullptr) {
        for (size_t w = 1; w < words.size(); ++w) {
          for (const std::string& pair : Split(words[w], ',')) {
            size_t colon = pair.find(':');
            if (colon == std::string::npos || pair.size() < 3 ||
                pair[0] != 'n') {
              continue;
            }
            placement->UpdateLoad(std::atoi(pair.c_str() + 1),
                                  std::atoll(pair.c_str() + colon + 1));
          }
        }
      }
      return "ok";
    }
    if (words[0] == "exit") {
      {
        std::lock_guard<std::mutex> lock(exit_mu);
        exit_requested = true;
      }
      exit_cv.notify_all();
      return "ok";
    }
    return "err unknown request";
  };

  ControlServer control(
      flags.control.empty() ? self.value().path + ".ctl" : flags.control,
      handler);
  Status control_status = control.Start();
  if (!control_status.ok()) {
    std::fprintf(stderr, "crew_node: %s\n",
                 control_status.ToString().c_str());
    return 1;
  }

  node.Start();
  if (!node.WaitConnected(std::chrono::seconds(30))) {
    CREW_LOG(Warn) << "crew_node " << self.value().Address()
                   << ": peers not all connected yet; continuing";
  }

  if (flags.drive) {
    for (int i = 1; i <= flags.instances; ++i) {
      std::string schema = testbed.ScheduleSchema(i);
      NodeId start_node = testbed.StartNode(schema, i);
      if (!testbed.Hosts(start_node)) continue;
      node.runtime().Post(start_node, [&testbed, schema, i]() {
        Status status = testbed.StartInstance(schema, i);
        if (!status.ok()) {
          CREW_LOG(Error) << "start " << schema << "#" << i
                          << " failed: " << status.ToString();
        }
      });
    }
  }

  // Periodic telemetry tick: refreshes every cell's metrics snapshot so
  // `status` replies and the supervisor's scrapes read near-live data
  // without ever touching a live shard from a foreign thread.
  std::thread sampler;
  if (flags.telemetry_interval_ms > 0) {
    sampler = std::thread([&]() {
      std::unique_lock<std::mutex> lock(exit_mu);
      while (!exit_requested) {
        exit_cv.wait_for(
            lock, std::chrono::milliseconds(flags.telemetry_interval_ms));
        if (exit_requested) break;
        lock.unlock();
        node.runtime().SampleMetrics(std::chrono::milliseconds(0));
        lock.lock();
      }
    });
  }

  {
    std::unique_lock<std::mutex> lock(exit_mu);
    exit_cv.wait(lock, [&]() { return exit_requested; });
  }
  if (sampler.joinable()) sampler.join();
  control.Stop();
  // Control server stopped: no new drivers can appear; join stragglers
  // (they bail out promptly on exit_requested).
  for (std::thread& driver : drivers) {
    if (driver.joinable()) driver.join();
  }
  node.Shutdown();

  // Shard write happens only on this clean-exit path: a SIGKILLed
  // incarnation leaves no shard, and the ids it minted (incarnation is
  // baked into bits 47..32) can never pair with a later life's records.
  if (!flags.trace_shard.empty()) {
    TraceShard shard =
        ShardFromRing(ring, self.value().Address(), flags.incarnation,
                      flags.tick_us, node.transport().ClockSamples());
    Status written = WriteTraceShard(shard, flags.trace_shard);
    if (!written.ok()) {
      std::fprintf(stderr, "crew_node: trace shard: %s\n",
                   written.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace crew::net

int main(int argc, char** argv) {
  crew::net::Flags flags;
  if (!crew::net::ParseFlags(argc, argv, &flags)) {
    crew::net::Usage();
    return 2;
  }
  return crew::net::Run(flags);
}
