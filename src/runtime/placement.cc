#include "runtime/placement.h"

#include <algorithm>
#include <cstdint>

namespace crew::runtime {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Fnv1a(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Final avalanche (splitmix64) so near-identical keys (consecutive
/// instance numbers) spread over the whole weight space.
uint64_t Mix(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace

const char* PlacementKindName(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kStatic:
      return "static";
    case PlacementKind::kRoundRobin:
      return "rr";
    case PlacementKind::kConsistentHash:
      return "hash";
    case PlacementKind::kLeastLoaded:
      return "least";
  }
  return "static";
}

bool ParsePlacementKind(const std::string& name, PlacementKind* kind) {
  if (name.empty() || name == "static") {
    *kind = PlacementKind::kStatic;
  } else if (name == "rr" || name == "round-robin" ||
             name == "roundrobin") {
    *kind = PlacementKind::kRoundRobin;
  } else if (name == "hash" || name == "consistent-hash" ||
             name == "chash") {
    *kind = PlacementKind::kConsistentHash;
  } else if (name == "least" || name == "least-loaded" ||
             name == "leastloaded") {
    *kind = PlacementKind::kLeastLoaded;
  } else {
    return false;
  }
  return true;
}

NodeId StaticPlacement::Place(const InstanceId& instance,
                              const std::vector<NodeId>& candidates) {
  return Owner(instance, candidates);
}

NodeId StaticPlacement::Owner(const InstanceId& /*instance*/,
                              const std::vector<NodeId>& candidates) const {
  return candidates.empty() ? kInvalidNode : candidates.front();
}

NodeId RoundRobinPlacement::Place(const InstanceId& instance,
                                  const std::vector<NodeId>& candidates) {
  return Owner(instance, candidates);
}

NodeId RoundRobinPlacement::Owner(
    const InstanceId& instance,
    const std::vector<NodeId>& candidates) const {
  if (candidates.empty()) return kInvalidNode;
  size_t slot = static_cast<size_t>(instance.number < 0 ? 0
                                                        : instance.number) %
                candidates.size();
  return candidates[slot];
}

uint64_t ConsistentHashPlacement::Weight(const InstanceId& instance,
                                         NodeId node) {
  uint64_t h = Fnv1a(kFnvOffset, instance.workflow.data(),
                     instance.workflow.size());
  int64_t number = instance.number;
  h = Fnv1a(h, &number, sizeof(number));
  int64_t node64 = node;
  h = Fnv1a(h, &node64, sizeof(node64));
  return Mix(h);
}

NodeId ConsistentHashPlacement::Place(
    const InstanceId& instance, const std::vector<NodeId>& candidates) {
  return Owner(instance, candidates);
}

NodeId ConsistentHashPlacement::Owner(
    const InstanceId& instance,
    const std::vector<NodeId>& candidates) const {
  NodeId best = kInvalidNode;
  uint64_t best_weight = 0;
  for (NodeId node : candidates) {
    uint64_t w = Weight(instance, node);
    if (best == kInvalidNode || w > best_weight ||
        (w == best_weight && node < best)) {
      best = node;
      best_weight = w;
    }
  }
  return best;
}

NodeId LeastLoadedPlacement::Place(const InstanceId& instance,
                                   const std::vector<NodeId>& candidates) {
  if (candidates.empty()) return kInvalidNode;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = placed_.find(instance);
  if (it != placed_.end()) return it->second;
  NodeId best = kInvalidNode;
  int64_t best_load = 0;
  for (NodeId node : candidates) {
    int64_t load = 0;
    auto fed = load_.find(node);
    if (fed != load_.end()) load += fed->second;
    auto fly = inflight_.find(node);
    if (fly != inflight_.end()) load += fly->second;
    // Ties break toward the lowest node id, so runs with identical
    // (e.g. pinned) feeds place deterministically.
    if (best == kInvalidNode || load < best_load) {
      best = node;
      best_load = load;
    }
  }
  placed_[instance] = best;
  ++inflight_[best];
  return best;
}

NodeId LeastLoadedPlacement::Owner(
    const InstanceId& instance,
    const std::vector<NodeId>& /*candidates*/) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = placed_.find(instance);
  return it == placed_.end() ? kInvalidNode : it->second;
}

void LeastLoadedPlacement::Forget(const InstanceId& instance) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = placed_.find(instance);
  if (it == placed_.end()) return;
  auto fly = inflight_.find(it->second);
  if (fly != inflight_.end() && fly->second > 0) --fly->second;
  placed_.erase(it);
}

void LeastLoadedPlacement::UpdateLoad(NodeId node, int64_t load) {
  std::lock_guard<std::mutex> lock(mu_);
  load_[node] = load;
}

int64_t LeastLoadedPlacement::LoadOf(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t load = 0;
  auto fed = load_.find(node);
  if (fed != load_.end()) load += fed->second;
  auto fly = inflight_.find(node);
  if (fly != inflight_.end()) load += fly->second;
  return load;
}

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kStatic:
      return std::make_unique<StaticPlacement>();
    case PlacementKind::kRoundRobin:
      return std::make_unique<RoundRobinPlacement>();
    case PlacementKind::kConsistentHash:
      return std::make_unique<ConsistentHashPlacement>();
    case PlacementKind::kLeastLoaded:
      return std::make_unique<LeastLoadedPlacement>();
  }
  return std::make_unique<StaticPlacement>();
}

}  // namespace crew::runtime
