#ifndef CREW_SIM_EVENT_QUEUE_H_
#define CREW_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace crew::sim {

/// Virtual time, in abstract ticks. A tick is roughly "one network hop";
/// computation cost is accounted separately (in instructions) by Metrics.
/// The live runtime (src/rt) reuses the same unit as wall microseconds
/// scaled by its tick length, so timeouts written in ticks keep their
/// relative magnitudes on both backends.
using Time = int64_t;

/// Clock + deferred-execution seam between the virtual-time simulator and
/// the live runtime. Engines and agents schedule delayed self-callbacks
/// through this interface only; the backend decides whether "later" means
/// a later event-queue entry (sim) or a timer firing on the calling
/// node's worker thread (rt).
class Scheduler {
 public:
  using Callback = std::function<void()>;

  virtual ~Scheduler() = default;

  /// Schedules `fn` at absolute time `at`. Precondition: at >= now().
  virtual void ScheduleAt(Time at, Callback fn) = 0;

  /// Current time in ticks (virtual or scaled-wall, per backend).
  virtual Time now() const = 0;

  /// Schedules `fn` `delay` ticks from now.
  void ScheduleAfter(Time delay, Callback fn) {
    ScheduleAt(now() + delay, std::move(fn));
  }
};

/// A scheduled callback. Events at equal time fire in insertion order
/// (stable), which keeps simulations deterministic.
class EventQueue : public Scheduler {
 public:
  /// Schedules `fn` at absolute time `at`. Precondition: at >= now().
  void ScheduleAt(Time at, Callback fn) override;

  /// Runs the next event; returns false if the queue is empty.
  bool RunOne();

  /// Runs events until the queue drains or `max_events` fire. Returns the
  /// number of events run.
  int64_t RunAll(int64_t max_events = INT64_MAX);

  /// Runs events with firing time <= `until`.
  int64_t RunUntil(Time until);

  Time now() const override { return now_; }
  /// Stable pointer to the clock, for observers (tracer, log prefixes)
  /// that outlive individual calls. Valid for the queue's lifetime.
  const Time* now_ptr() const { return &now_; }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    Time at;
    uint64_t seq;  // tie-breaker: insertion order
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Binary heap managed with std::push_heap/std::pop_heap over a plain
  /// vector: identical ordering to std::priority_queue, but the popped
  /// entry can be *moved* out (priority_queue::top() is const, which
  /// forces a copy of the std::function payload on every dispatch).
  std::vector<Entry> heap_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace crew::sim

#endif  // CREW_SIM_EVENT_QUEUE_H_
